//! Crash-safe checkpoint/resume for backend executions.
//!
//! [`SessionCheckpoint`] captures *everything* an
//! [`ExecutionSession`] needs to continue a
//! run bit-for-bit: model weights, optimizer slots, every RNG stream
//! position, the cache's resident set and eviction bookkeeping, the
//! simulated clock, and all accumulated report state. The determinism
//! contract is strict — a run killed at any epoch boundary and resumed
//! from its latest checkpoint produces a final `ExecutionReport`
//! byte-identical to the uninterrupted run.
//!
//! [`RuntimeBackend::execute_durable`](crate::RuntimeBackend::execute_durable)
//! is the driver: it checkpoints every K epochs into a
//! [`CheckpointDir`], resumes from the newest verifiable checkpoint,
//! and honors the crash/corruption fault kinds (`ProcessKill`,
//! `TornWrite`, `BitFlip`) so chaos tests can kill and corrupt a run
//! at every epoch boundary.

use crate::backend::{DegradationStep, ExecutionOptions, ExecutionReport, RecoveryLog};
use crate::config::TrainingConfig;
use crate::perf::PhaseBreakdown;
use crate::session::ExecutionSession;
use crate::{RuntimeBackend, RuntimeError};
use gnnav_cache::{CachePolicy, CacheSnapshot, CacheStats};
use gnnav_faults::{FaultInjector, FaultKind};
use gnnav_graph::Dataset;
use gnnav_hwsim::{Precision, SimTime};
use gnnav_nn::{AdamState, ModelKind};
use gnnav_obs::names as metric;
use gnnav_store::{ByteReader, ByteWriter, CheckpointDir, StoreError, Wal};
use std::path::PathBuf;

/// Leading payload byte of a static-session checkpoint, so a resume
/// path never mis-decodes a checkpoint written by a different driver
/// (the adaptive runner uses its own tag).
pub const SESSION_PAYLOAD_TAG: u8 = 1;

/// File name of the lineage log inside a checkpoint directory: one
/// record per simulated process kill, so the kill count survives even
/// when no checkpoint does.
pub const LINEAGE_WAL: &str = "lineage.wal";

/// Where and how often [`RuntimeBackend::execute_durable`] persists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// Directory holding checkpoints and the lineage log.
    pub dir: PathBuf,
    /// Checkpoint after every `every` completed epochs.
    pub every: usize,
    /// Whether to resume from the newest verifiable checkpoint in
    /// `dir` (cold-starts when none survives).
    pub resume: bool,
}

impl DurabilityOptions {
    /// Durability into `dir`, checkpointing every `every` epochs, with
    /// resume enabled.
    pub fn new(dir: impl Into<PathBuf>, every: usize) -> Self {
        DurabilityOptions { dir: dir.into(), every: every.max(1), resume: true }
    }
}

/// The complete mutable state of an execution session at an epoch
/// boundary. Everything that feeds the final report or any later
/// epoch's behavior is here; purely diagnostic wall-clock and
/// allocator counters are deliberately excluded (they restart from
/// zero and never enter the report's deterministic fields).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCheckpoint {
    /// The requested config (becomes the report's config).
    pub config: TrainingConfig,
    /// The config in effect after degradation-ladder steps.
    pub eff_config: TrainingConfig,
    /// Cache entries currently allocated (post any ladder shrinks).
    pub cache_entries: usize,
    /// Degradation ladder: current micro-batch division factor.
    pub micro_batch: usize,
    /// Degradation ladder: whether fanout reduction already fired.
    pub fanout_reduced: bool,
    /// Flattened model parameters, in `for_each_param_mut` order.
    pub params: Vec<f32>,
    /// Dropout RNG stream position.
    pub dropout_rng: [u64; 4],
    /// Adam optimizer state (lr, step count, moment slots).
    pub opt: AdamState,
    /// Batching/sampling RNG stream position.
    pub rng: [u64; 4],
    /// The device cache's observable state.
    pub cache: CacheSnapshot,
    /// Hit statistics carried from caches replaced by ladder shrinks
    /// or config switches.
    pub stats_carry: CacheStats,
    /// Memory ledger high-water mark in bytes.
    pub peak_mem_bytes: usize,
    /// Accumulated per-phase simulated time.
    pub phases: PhaseBreakdown,
    /// Total simulated time so far.
    pub epoch_time_total: SimTime,
    /// Sampled nodes summed over all batches so far.
    pub total_nodes: usize,
    /// Sampled edges summed over all batches so far.
    pub total_edges: usize,
    /// Mini-batches executed so far (also the batch fault site).
    pub total_batches: usize,
    /// Iterations of the most recent epoch.
    pub n_iter: usize,
    /// Per-training-step loss history.
    pub loss_history: Vec<f32>,
    /// Recovery actions absorbed so far.
    pub recovery: RecoveryLog,
    /// Cache evictions so far.
    pub evictions: usize,
    /// Epochs completed.
    pub epochs_run: usize,
    /// Training steps taken (the NaN-loss fault site).
    pub train_steps: u64,
    /// Faults injected by the session's plan so far.
    pub faults_injected: u64,
}

fn put_sampler(w: &mut ByteWriter, s: crate::SamplerKind) {
    w.put_u8(match s {
        crate::SamplerKind::NodeWise => 0,
        crate::SamplerKind::LayerWise => 1,
        crate::SamplerKind::SubgraphWise => 2,
    });
}

fn get_sampler(r: &mut ByteReader) -> Result<crate::SamplerKind, StoreError> {
    match r.get_u8()? {
        0 => Ok(crate::SamplerKind::NodeWise),
        1 => Ok(crate::SamplerKind::LayerWise),
        2 => Ok(crate::SamplerKind::SubgraphWise),
        t => Err(StoreError::decode(format!("unknown sampler tag {t}"))),
    }
}

fn put_policy(w: &mut ByteWriter, p: CachePolicy) {
    w.put_u8(match p {
        CachePolicy::None => 0,
        CachePolicy::StaticDegree => 1,
        CachePolicy::Fifo => 2,
        CachePolicy::Lru => 3,
        CachePolicy::Lfu => 4,
        _ => unreachable!("cache policy {p:?} needs a checkpoint tag"),
    });
}

fn get_policy(r: &mut ByteReader) -> Result<CachePolicy, StoreError> {
    match r.get_u8()? {
        0 => Ok(CachePolicy::None),
        1 => Ok(CachePolicy::StaticDegree),
        2 => Ok(CachePolicy::Fifo),
        3 => Ok(CachePolicy::Lru),
        4 => Ok(CachePolicy::Lfu),
        t => Err(StoreError::decode(format!("unknown cache-policy tag {t}"))),
    }
}

/// Appends a [`TrainingConfig`] to a checkpoint payload in the stable
/// field order (shared with the adaptive layer's checkpoint format).
pub fn put_config(w: &mut ByteWriter, c: &TrainingConfig) {
    put_sampler(w, c.sampler);
    w.put_usize_slice(&c.fanouts);
    w.put_f64(c.locality_eta);
    w.put_usize(c.batch_size);
    w.put_f64(c.cache_ratio);
    put_policy(w, c.cache_policy);
    w.put_bool(c.cache_update);
    w.put_bool(c.pipelined);
    w.put_u8(match c.precision {
        Precision::Fp32 => 0,
        Precision::Fp16 => 1,
    });
    w.put_u8(match c.model {
        ModelKind::Gcn => 0,
        ModelKind::Sage => 1,
        ModelKind::Gat => 2,
        _ => unreachable!("model kind {:?} needs a checkpoint tag", c.model),
    });
    w.put_usize(c.hidden_dim);
    w.put_f64(c.dropout);
}

/// Reads back a [`TrainingConfig`] written by [`put_config`],
/// rejecting unknown enum tags with a typed decode error.
pub fn get_config(r: &mut ByteReader) -> Result<TrainingConfig, StoreError> {
    Ok(TrainingConfig {
        sampler: get_sampler(r)?,
        fanouts: r.get_usize_vec()?,
        locality_eta: r.get_f64()?,
        batch_size: r.get_usize()?,
        cache_ratio: r.get_f64()?,
        cache_policy: get_policy(r)?,
        cache_update: r.get_bool()?,
        pipelined: r.get_bool()?,
        precision: match r.get_u8()? {
            0 => Precision::Fp32,
            1 => Precision::Fp16,
            t => return Err(StoreError::decode(format!("unknown precision tag {t}"))),
        },
        model: match r.get_u8()? {
            0 => ModelKind::Gcn,
            1 => ModelKind::Sage,
            2 => ModelKind::Gat,
            t => return Err(StoreError::decode(format!("unknown model tag {t}"))),
        },
        hidden_dim: r.get_usize()?,
        dropout: r.get_f64()?,
    })
}

fn put_sim_time(w: &mut ByteWriter, t: SimTime) {
    w.put_f64(t.as_secs());
}

fn get_sim_time(r: &mut ByteReader) -> Result<SimTime, StoreError> {
    let secs = r.get_f64()?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(StoreError::decode(format!("invalid simulated duration {secs}")));
    }
    Ok(SimTime::from_secs(secs))
}

fn put_rng(w: &mut ByteWriter, s: [u64; 4]) {
    for x in s {
        w.put_u64(x);
    }
}

fn get_rng(r: &mut ByteReader) -> Result<[u64; 4], StoreError> {
    Ok([r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?])
}

fn put_recovery(w: &mut ByteWriter, log: &RecoveryLog) {
    w.put_u64(log.faults_injected);
    w.put_u32(log.retries);
    w.put_usize(log.degradations.len());
    for step in &log.degradations {
        match step {
            DegradationStep::ShrinkCache { from_entries, to_entries } => {
                w.put_u8(0);
                w.put_usize(*from_entries);
                w.put_usize(*to_entries);
            }
            DegradationStep::MicroBatch { factor } => {
                w.put_u8(1);
                w.put_usize(*factor);
            }
            DegradationStep::ReduceFanout { fanouts } => {
                w.put_u8(2);
                w.put_usize_slice(fanouts);
            }
        }
    }
    w.put_u32(log.nan_steps_skipped);
    w.put_u32(log.lr_halvings);
    put_sim_time(w, log.recovery_sim);
}

fn get_recovery(r: &mut ByteReader) -> Result<RecoveryLog, StoreError> {
    let faults_injected = r.get_u64()?;
    let retries = r.get_u32()?;
    let n = r.get_usize()?;
    let mut degradations = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        degradations.push(match r.get_u8()? {
            0 => DegradationStep::ShrinkCache {
                from_entries: r.get_usize()?,
                to_entries: r.get_usize()?,
            },
            1 => DegradationStep::MicroBatch { factor: r.get_usize()? },
            2 => DegradationStep::ReduceFanout { fanouts: r.get_usize_vec()? },
            t => return Err(StoreError::decode(format!("unknown degradation tag {t}"))),
        });
    }
    Ok(RecoveryLog {
        faults_injected,
        retries,
        degradations,
        nan_steps_skipped: r.get_u32()?,
        lr_halvings: r.get_u32()?,
        recovery_sim: get_sim_time(r)?,
    })
}

fn put_cache_snapshot(w: &mut ByteWriter, s: &CacheSnapshot) {
    w.put_usize(s.capacity);
    w.put_u32_slice(&s.resident);
    w.put_u32_slice(&s.freq);
    w.put_usize(s.heap.len());
    for &(freq, seq, node) in &s.heap {
        w.put_u32(freq);
        w.put_u64(seq);
        w.put_u32(node);
    }
    w.put_u64(s.seq);
    w.put_usize(s.stats.lookups);
    w.put_usize(s.stats.hits);
}

fn get_cache_snapshot(r: &mut ByteReader) -> Result<CacheSnapshot, StoreError> {
    let capacity = r.get_usize()?;
    let resident = r.get_u32_vec()?;
    let freq = r.get_u32_vec()?;
    let n = r.get_usize()?;
    let mut heap = Vec::with_capacity(n.min(r.remaining() / 16 + 1));
    for _ in 0..n {
        heap.push((r.get_u32()?, r.get_u64()?, r.get_u32()?));
    }
    Ok(CacheSnapshot {
        capacity,
        resident,
        freq,
        heap,
        seq: r.get_u64()?,
        stats: CacheStats { lookups: r.get_usize()?, hits: r.get_usize()? },
    })
}

impl SessionCheckpoint {
    /// Encodes the checkpoint into its durable payload form.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(SESSION_PAYLOAD_TAG);
        put_config(&mut w, &self.config);
        put_config(&mut w, &self.eff_config);
        w.put_usize(self.cache_entries);
        w.put_usize(self.micro_batch);
        w.put_bool(self.fanout_reduced);
        w.put_f32_slice(&self.params);
        put_rng(&mut w, self.dropout_rng);
        w.put_f32(self.opt.lr);
        w.put_u64(self.opt.t);
        w.put_usize(self.opt.m.len());
        for m in &self.opt.m {
            w.put_f32_slice(m);
        }
        w.put_usize(self.opt.v.len());
        for v in &self.opt.v {
            w.put_f32_slice(v);
        }
        put_rng(&mut w, self.rng);
        put_cache_snapshot(&mut w, &self.cache);
        w.put_usize(self.stats_carry.lookups);
        w.put_usize(self.stats_carry.hits);
        w.put_usize(self.peak_mem_bytes);
        for t in
            [self.phases.sample, self.phases.transfer, self.phases.replace, self.phases.compute]
        {
            put_sim_time(&mut w, t);
        }
        put_sim_time(&mut w, self.epoch_time_total);
        w.put_usize(self.total_nodes);
        w.put_usize(self.total_edges);
        w.put_usize(self.total_batches);
        w.put_usize(self.n_iter);
        w.put_f32_slice(&self.loss_history);
        put_recovery(&mut w, &self.recovery);
        w.put_usize(self.evictions);
        w.put_usize(self.epochs_run);
        w.put_u64(self.train_steps);
        w.put_u64(self.faults_injected);
        w.finish()
    }

    /// Decodes a payload previously produced by
    /// [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Typed [`StoreError::Decode`] on a foreign payload tag,
    /// truncation, unknown enum tags, or trailing garbage.
    pub fn decode(payload: &[u8]) -> Result<SessionCheckpoint, StoreError> {
        let mut r = ByteReader::new(payload);
        let tag = r.get_u8()?;
        if tag != SESSION_PAYLOAD_TAG {
            return Err(StoreError::decode(format!(
                "payload tag {tag} is not a session checkpoint (expected {SESSION_PAYLOAD_TAG})"
            )));
        }
        let config = get_config(&mut r)?;
        let eff_config = get_config(&mut r)?;
        let cache_entries = r.get_usize()?;
        let micro_batch = r.get_usize()?;
        let fanout_reduced = r.get_bool()?;
        let params = r.get_f32_vec()?;
        let dropout_rng = get_rng(&mut r)?;
        let lr = r.get_f32()?;
        let t = r.get_u64()?;
        let n_m = r.get_usize()?;
        let mut m = Vec::with_capacity(n_m.min(1024));
        for _ in 0..n_m {
            m.push(r.get_f32_vec()?);
        }
        let n_v = r.get_usize()?;
        let mut v = Vec::with_capacity(n_v.min(1024));
        for _ in 0..n_v {
            v.push(r.get_f32_vec()?);
        }
        let rng = get_rng(&mut r)?;
        let cache = get_cache_snapshot(&mut r)?;
        let stats_carry = CacheStats { lookups: r.get_usize()?, hits: r.get_usize()? };
        let peak_mem_bytes = r.get_usize()?;
        let phases = PhaseBreakdown {
            sample: get_sim_time(&mut r)?,
            transfer: get_sim_time(&mut r)?,
            replace: get_sim_time(&mut r)?,
            compute: get_sim_time(&mut r)?,
        };
        let ckpt = SessionCheckpoint {
            config,
            eff_config,
            cache_entries,
            micro_batch,
            fanout_reduced,
            params,
            dropout_rng,
            opt: AdamState { lr, t, m, v },
            rng,
            cache,
            stats_carry,
            peak_mem_bytes,
            phases,
            epoch_time_total: get_sim_time(&mut r)?,
            total_nodes: r.get_usize()?,
            total_edges: r.get_usize()?,
            total_batches: r.get_usize()?,
            n_iter: r.get_usize()?,
            loss_history: r.get_f32_vec()?,
            recovery: get_recovery(&mut r)?,
            evictions: r.get_usize()?,
            epochs_run: r.get_usize()?,
            train_steps: r.get_u64()?,
            faults_injected: r.get_u64()?,
        };
        if !r.is_exhausted() {
            return Err(StoreError::decode(format!(
                "{} trailing bytes after session checkpoint",
                r.remaining()
            )));
        }
        Ok(ckpt)
    }
}

impl RuntimeBackend {
    /// Reopens a session from a checkpoint taken on this platform,
    /// ready to run its next epoch.
    ///
    /// # Errors
    ///
    /// The same validation errors as
    /// [`open_session`](Self::open_session), plus
    /// [`RuntimeError::InvalidConfig`] when the checkpoint does not
    /// fit the dataset (wrong parameter count, out-of-range cache
    /// nodes).
    pub fn resume_session<'d>(
        &self,
        dataset: &'d Dataset,
        opts: &ExecutionOptions,
        ckpt: &SessionCheckpoint,
    ) -> Result<ExecutionSession<'d>, RuntimeError> {
        ExecutionSession::resume(self.platform().clone(), dataset, opts, ckpt)
    }

    /// Executes training with crash-safe durability: resume from the
    /// newest verifiable checkpoint in `dur.dir` (when `dur.resume`),
    /// checkpoint after every `dur.every` completed epochs, and honor
    /// the crash/corruption fault kinds in `opts.fault_plan`:
    ///
    /// - `ProcessKill` at epoch-boundary site `e` (attempt = the
    ///   lineage's persisted kill count) aborts the run with
    ///   [`RuntimeError::Killed`] before epoch `e` runs.
    /// - `TornWrite` / `BitFlip` at site `e` corrupt the checkpoint
    ///   file written after epoch `e`, exercising the resume
    ///   fallback chain.
    ///
    /// A run killed at any boundary and re-invoked with the same
    /// arguments finishes with a report byte-identical to the
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// Everything [`execute`](Self::execute) returns, plus
    /// [`RuntimeError::Killed`] and [`RuntimeError::Store`].
    pub fn execute_durable(
        &self,
        dataset: &Dataset,
        config: &TrainingConfig,
        opts: &ExecutionOptions,
        dur: &DurabilityOptions,
    ) -> Result<ExecutionReport, RuntimeError> {
        let ckpts = CheckpointDir::create(&dur.dir, "session")?;
        let mut lineage = Wal::open(dur.dir.join(LINEAGE_WAL))?;
        let kill_attempt = lineage.len() as u32;
        let every = dur.every.max(1);

        let mut session = None;
        if dur.resume {
            if let Some((_, payload)) = ckpts.load_latest()? {
                match SessionCheckpoint::decode(&payload) {
                    Ok(ckpt) => session = Some(self.resume_session(dataset, opts, &ckpt)?),
                    Err(_) => {
                        // CRC-valid but undecodable (foreign tag or
                        // incompatible shape): reject like any other
                        // damaged checkpoint and cold-start.
                        let metrics = gnnav_obs::global();
                        if metrics.is_enabled() {
                            metrics.add(metric::STORE_CHECKPOINT_REJECTED, 1);
                        }
                    }
                }
            }
        }
        let mut session = match session {
            Some(s) => s,
            None => self.open_session(dataset, config, opts)?,
        };

        let kill_injector =
            opts.fault_plan.as_ref().filter(|p| !p.is_empty()).map(FaultInjector::new);
        while session.epochs_run() < opts.epochs {
            let epoch = session.epochs_run();
            if let Some(inj) = &kill_injector {
                if inj.inject(FaultKind::ProcessKill, epoch as u64, kill_attempt, None).is_some() {
                    // Record the kill in the lineage log so the next
                    // life sees attempt+1, then "die".
                    lineage.append(&(epoch as u64).to_le_bytes())?;
                    let metrics = gnnav_obs::global();
                    let journal = metrics.journal();
                    if journal.is_enabled() {
                        journal.instant(
                            metric::EVENT_KILL,
                            metric::TRACK_STORE,
                            None,
                            vec![
                                ("epoch".into(), epoch.into()),
                                ("attempt".into(), (kill_attempt as u64).into()),
                            ],
                        );
                    }
                    return Err(RuntimeError::Killed { epoch });
                }
            }
            session.run_epoch()?;
            let done = session.epochs_run();
            if done % every == 0 && done < opts.epochs {
                let ckpt = session.checkpoint();
                ckpts.write(done, &ckpt.encode())?;
                let metrics = gnnav_obs::global();
                if metrics.is_enabled() {
                    metrics.gauge_set(metric::STORE_CHECKPOINT_BYTES, ckpt.encode().len() as f64);
                }
                if let Some(inj) = &kill_injector {
                    let site = (done - 1) as u64;
                    let path = ckpts.path_for(done);
                    if let Some(m) = inj.inject(FaultKind::TornWrite, site, 0, None) {
                        gnnav_store::corrupt::torn_write(&path, m.max(1.0) as u64)?;
                    }
                    if let Some(m) = inj.inject(FaultKind::BitFlip, site, 0, None) {
                        gnnav_store::corrupt::bit_flip(&path, m.max(0.0) as u64, 3)?;
                    }
                }
            }
        }
        session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RecoveryLog;

    fn sample_checkpoint() -> SessionCheckpoint {
        SessionCheckpoint {
            config: TrainingConfig::default(),
            eff_config: TrainingConfig { fanouts: vec![5, 5], ..TrainingConfig::default() },
            cache_entries: 32,
            micro_batch: 2,
            fanout_reduced: true,
            params: vec![0.5, -1.25, f32::NAN],
            dropout_rng: [1, 2, 3, 4],
            opt: AdamState { lr: 0.01, t: 7, m: vec![vec![0.1], vec![]], v: vec![vec![0.2]] },
            rng: [9, 8, 7, 6],
            cache: CacheSnapshot {
                capacity: 32,
                resident: vec![3, 1, 4],
                freq: vec![0, 2, 0, 1, 1],
                heap: vec![(2, 0, 1), (1, 1, 3)],
                seq: 2,
                stats: CacheStats { lookups: 10, hits: 4 },
            },
            stats_carry: CacheStats { lookups: 100, hits: 40 },
            peak_mem_bytes: 123_456,
            phases: PhaseBreakdown {
                sample: SimTime::from_secs(1.0),
                transfer: SimTime::from_secs(2.0),
                replace: SimTime::from_secs(0.5),
                compute: SimTime::from_secs(3.25),
            },
            epoch_time_total: SimTime::from_secs(6.75),
            total_nodes: 1000,
            total_edges: 5000,
            total_batches: 12,
            n_iter: 6,
            loss_history: vec![1.5, 1.2, 1.1],
            recovery: RecoveryLog {
                faults_injected: 3,
                retries: 2,
                degradations: vec![
                    DegradationStep::ShrinkCache { from_entries: 64, to_entries: 32 },
                    DegradationStep::MicroBatch { factor: 2 },
                    DegradationStep::ReduceFanout { fanouts: vec![5, 5] },
                ],
                nan_steps_skipped: 1,
                lr_halvings: 1,
                recovery_sim: SimTime::from_secs(0.25),
            },
            evictions: 17,
            epochs_run: 2,
            train_steps: 12,
            faults_injected: 3,
        }
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let ckpt = sample_checkpoint();
        let decoded = SessionCheckpoint::decode(&ckpt.encode()).expect("decode");
        // NaN params break PartialEq; compare on the Debug rendering,
        // which is also the byte-identity standard the durability
        // tests use.
        assert_eq!(format!("{decoded:?}"), format!("{ckpt:?}"));
        // And the NaN bits themselves survive.
        assert_eq!(decoded.params[2].to_bits(), ckpt.params[2].to_bits());
    }

    #[test]
    fn decode_rejects_foreign_tag_truncation_and_trailing() {
        let bytes = sample_checkpoint().encode();

        let mut foreign = bytes.clone();
        foreign[0] = 0xEE;
        assert!(SessionCheckpoint::decode(&foreign).is_err());

        let truncated = &bytes[..bytes.len() - 3];
        assert!(SessionCheckpoint::decode(truncated).is_err());

        let mut trailing = bytes.clone();
        trailing.push(0);
        let err = SessionCheckpoint::decode(&trailing).expect_err("trailing");
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn decode_rejects_unknown_enum_tags() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.encode();
        // Byte 1 is the config's sampler tag.
        let mut bad = bytes.clone();
        bad[1] = 99;
        let err = SessionCheckpoint::decode(&bad).expect_err("bad sampler");
        assert!(err.to_string().contains("sampler"));
    }

    #[test]
    fn durability_options_clamp_every() {
        let d = DurabilityOptions::new("/tmp/x", 0);
        assert_eq!(d.every, 1);
    }

    #[test]
    fn checkpoint_resume_midrun_is_byte_identical() {
        use gnnav_graph::DatasetId;
        use gnnav_hwsim::Platform;

        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
        let config = TrainingConfig {
            batch_size: 64,
            fanouts: vec![5, 5],
            hidden_dim: 16,
            ..TrainingConfig::default()
        };
        let opts = ExecutionOptions { epochs: 3, ..Default::default() };
        let backend = RuntimeBackend::new(Platform::default_rtx4090());

        let straight = backend.execute(&dataset, &config, &opts).expect("straight");

        let mut first = backend.open_session(&dataset, &config, &opts).expect("open");
        first.run_epoch().expect("epoch 0");
        let ckpt = first.checkpoint();
        drop(first);
        // The checkpoint survives a full encode/decode round trip
        // before resuming — the same path a real crash takes.
        let ckpt = SessionCheckpoint::decode(&ckpt.encode()).expect("decode");
        let mut resumed = backend.resume_session(&dataset, &opts, &ckpt).expect("resume");
        while resumed.epochs_run() < opts.epochs {
            resumed.run_epoch().expect("epoch");
        }
        let report = resumed.finish().expect("finish");
        assert_eq!(
            format!("{report:?}"),
            format!("{straight:?}"),
            "resumed report must be byte-identical to the uninterrupted run"
        );
    }
}
