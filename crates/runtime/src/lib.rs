//! Reconfigurable GNN training runtime for the GNNavigator
//! reproduction.
//!
//! This crate is the paper's "reconfigurable runtime backend" (§3.2):
//! a single training loop whose sampling, transmission, computation,
//! and model-design behavior is controlled entirely by a
//! [`TrainingConfig`]. Prior systems are specific configurations
//! ([`Template`]); the explorer searches over all of them.
//!
//! Execution combines *real* GNN training (the `gnnav-nn` substrate)
//! with *simulated* hardware timing and memory (the `gnnav-hwsim`
//! substrate), producing the `Perf{T, Γ, Acc}` triple ([`Perf`]) the
//! paper's evaluation tables report.

#![warn(missing_docs)]

pub mod backend;
pub mod checkpoint;
pub mod config;
pub mod perf;
pub mod report;
pub mod session;
pub mod space;
pub mod templates;

pub use backend::{
    DegradationStep, ExecutionOptions, ExecutionReport, RecoveryLog, RecoveryPolicy, RuntimeBackend,
};
pub use checkpoint::{DurabilityOptions, SessionCheckpoint};
pub use config::{SamplerKind, TrainingConfig};
pub use perf::{Perf, PhaseBreakdown};
pub use report::{write_perf_csv, write_perf_jsonl, PERF_CSV_HEADER};
pub use session::{EpochStats, ExecutionSession};
pub use space::DesignSpace;
pub use templates::Template;

use std::error::Error;
use std::fmt;

/// Errors from backend execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The configuration is internally inconsistent.
    InvalidConfig(String),
    /// A graph operation failed (bad node ids, sampling failure).
    Graph(gnnav_graph::GraphError),
    /// The hardware simulation rejected the run (out of memory).
    Hw(gnnav_hwsim::HwError),
    /// A transient fault persisted past the bounded retry budget and
    /// every graceful-degradation step; `what` names the failing
    /// operation and `last_error` its final failure.
    RetriesExhausted {
        /// The operation that kept failing.
        what: String,
        /// Attempts made before giving up.
        attempts: u32,
        /// Rendered final error.
        last_error: String,
    },
    /// A durable-store operation (checkpoint or WAL I/O) failed.
    Store(gnnav_store::StoreError),
    /// An injected `ProcessKill` fault ended the run at this epoch
    /// boundary; the caller may resume from the last checkpoint.
    Killed {
        /// The epoch boundary (zero-based) where the kill fired.
        epoch: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidConfig(msg) => write!(f, "invalid training configuration: {msg}"),
            RuntimeError::Graph(e) => write!(f, "graph error: {e}"),
            RuntimeError::Hw(e) => write!(f, "hardware error: {e}"),
            RuntimeError::RetriesExhausted { what, attempts, last_error } => write!(
                f,
                "retries exhausted after {attempts} attempt(s) during {what}: {last_error}"
            ),
            RuntimeError::Store(e) => write!(f, "store error: {e}"),
            RuntimeError::Killed { epoch } => {
                write!(f, "simulated process kill at epoch boundary {epoch}")
            }
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Graph(e) => Some(e),
            RuntimeError::Hw(e) => Some(e),
            RuntimeError::Store(e) => Some(e),
            RuntimeError::InvalidConfig(_)
            | RuntimeError::RetriesExhausted { .. }
            | RuntimeError::Killed { .. } => None,
        }
    }
}

impl From<gnnav_store::StoreError> for RuntimeError {
    fn from(e: gnnav_store::StoreError) -> Self {
        RuntimeError::Store(e)
    }
}

impl From<gnnav_graph::GraphError> for RuntimeError {
    fn from(e: gnnav_graph::GraphError) -> Self {
        RuntimeError::Graph(e)
    }
}

impl From<gnnav_hwsim::HwError> for RuntimeError {
    fn from(e: gnnav_hwsim::HwError) -> Self {
        RuntimeError::Hw(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_and_source() {
        let g: RuntimeError = gnnav_graph::GraphError::InvalidParameter("x".into()).into();
        assert!(g.source().is_some());
        let h: RuntimeError =
            gnnav_hwsim::HwError::OutOfMemory { requested: 2, capacity: 1 }.into();
        assert!(h.to_string().contains("out of memory"));
        let c = RuntimeError::InvalidConfig("bad".into());
        assert!(c.source().is_none());
    }
}
