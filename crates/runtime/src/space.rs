//! The design space: discretized axes over every reconfigurable
//! backend setting.
//!
//! "All reconfigurable parameters in the runtime backend make up the
//! design space" (paper §3.2). The explorer walks this space with DFS;
//! the estimator trains on samples from it.

use crate::config::{SamplerKind, TrainingConfig};
use gnnav_cache::CachePolicy;
use gnnav_hwsim::Precision;
use gnnav_nn::ModelKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Discretized option lists for every configuration axis.
///
/// # Example
///
/// ```
/// use gnnav_runtime::DesignSpace;
/// use gnnav_nn::ModelKind;
///
/// let space = DesignSpace::reduced();
/// let configs = space.enumerate(ModelKind::Sage);
/// assert!(!configs.is_empty());
/// assert!(configs.len() <= space.size());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    /// Sampler families.
    pub samplers: Vec<SamplerKind>,
    /// Per-layer fanout vectors `k^l`.
    pub fanout_options: Vec<Vec<usize>>,
    /// Locality-bias strengths `η`.
    pub etas: Vec<f64>,
    /// Mini-batch target counts `|B^0|`.
    pub batch_sizes: Vec<usize>,
    /// Cache ratios `r`.
    pub cache_ratios: Vec<f64>,
    /// Cache policies.
    pub cache_policies: Vec<CachePolicy>,
    /// Cache-update flags.
    pub cache_updates: Vec<bool>,
    /// Pipelining flags.
    pub pipelined: Vec<bool>,
    /// Precisions.
    pub precisions: Vec<Precision>,
    /// Hidden widths.
    pub hidden_dims: Vec<usize>,
    /// Dropout probabilities.
    pub dropouts: Vec<f64>,
}

impl DesignSpace {
    /// The full space used by the guideline explorer.
    pub fn standard() -> Self {
        DesignSpace {
            samplers: SamplerKind::ALL.to_vec(),
            fanout_options: vec![
                vec![5, 5],
                vec![10, 5],
                vec![10, 10],
                vec![15, 10],
                vec![25, 10],
                vec![25, 25],
                vec![10, 10, 5],
            ],
            etas: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            batch_sizes: vec![128, 256, 512, 1024],
            cache_ratios: vec![0.0, 0.05, 0.1, 0.2, 0.3, 0.5],
            cache_policies: CachePolicy::ALL.to_vec(),
            cache_updates: vec![false, true],
            pipelined: vec![false, true],
            precisions: vec![Precision::Fp32, Precision::Fp16],
            hidden_dims: vec![32, 64],
            dropouts: vec![0.0, 0.2, 0.5],
        }
    }

    /// A small space whose *valid* configurations can be exhaustively
    /// executed (used by the Fig. 6 ground-truth sweep).
    pub fn reduced() -> Self {
        DesignSpace {
            samplers: vec![SamplerKind::NodeWise],
            fanout_options: vec![vec![5, 5], vec![10, 10], vec![25, 10]],
            etas: vec![0.0, 0.5, 1.0],
            batch_sizes: vec![128, 512],
            cache_ratios: vec![0.0, 0.1, 0.3],
            cache_policies: vec![CachePolicy::None, CachePolicy::StaticDegree],
            cache_updates: vec![true],
            pipelined: vec![false, true],
            precisions: vec![Precision::Fp32],
            hidden_dims: vec![32],
            dropouts: vec![0.0],
        }
    }

    /// Number of raw axis combinations (including invalid ones that
    /// [`DesignSpace::enumerate`] filters out).
    pub fn size(&self) -> usize {
        self.samplers.len()
            * self.fanout_options.len()
            * self.etas.len()
            * self.batch_sizes.len()
            * self.cache_ratios.len()
            * self.cache_policies.len()
            * self.cache_updates.len()
            * self.pipelined.len()
            * self.precisions.len()
            * self.hidden_dims.len()
            * self.dropouts.len()
    }

    /// Number of axes (for DFS traversal).
    pub fn num_axes(&self) -> usize {
        11
    }

    /// Length of axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= 10`.
    pub fn axis_len(&self, axis: usize) -> usize {
        match axis {
            0 => self.samplers.len(),
            1 => self.fanout_options.len(),
            2 => self.etas.len(),
            3 => self.batch_sizes.len(),
            4 => self.cache_ratios.len(),
            5 => self.cache_policies.len(),
            6 => self.cache_updates.len(),
            7 => self.pipelined.len(),
            8 => self.precisions.len(),
            9 => self.hidden_dims.len(),
            10 => self.dropouts.len(),
            // Internal invariant, not user input: axis indices come
            // from DFS loops bounded by num_axes(), so an
            // out-of-range axis is a caller bug.
            other => panic!("axis {other} out of range (11 axes)"),
        }
    }

    /// Human-readable axis name (diagnostics and ablation tables).
    pub fn axis_name(&self, axis: usize) -> &'static str {
        match axis {
            0 => "sampler",
            1 => "fanouts",
            2 => "eta",
            3 => "batch_size",
            4 => "cache_ratio",
            5 => "cache_policy",
            6 => "cache_update",
            7 => "pipelined",
            8 => "precision",
            9 => "hidden_dim",
            10 => "dropout",
            // Internal invariant, same bound as axis_len above.
            other => panic!("axis {other} out of range (11 axes)"),
        }
    }

    /// Builds the configuration at the given per-axis indices, or
    /// `None` when the combination is invalid (e.g. a positive cache
    /// ratio with the `none` policy, or `r = 0` with a real policy).
    ///
    /// # Panics
    ///
    /// Panics if `indices` has the wrong length or an index is out of
    /// range.
    pub fn config_at(&self, indices: &[usize], model: ModelKind) -> Option<TrainingConfig> {
        // Internal invariant: index vectors are produced by the
        // explorer's own traversal, never parsed from user input.
        assert_eq!(indices.len(), self.num_axes(), "one index per axis");
        let policy = self.cache_policies[indices[5]];
        let ratio = self.cache_ratios[indices[4]];
        // Canonical validity: no-cache ⇔ ratio 0 (avoids duplicate
        // equivalent points in the space).
        if (policy == CachePolicy::None) != (ratio == 0.0) {
            return None;
        }
        // A frozen *static* cache is the same point as update=true for
        // non-dynamic policies; keep only update=false there.
        let update = self.cache_updates[indices[6]];
        if !policy.is_dynamic() && update && self.cache_updates.len() > 1 {
            return None;
        }
        let config = TrainingConfig {
            sampler: self.samplers[indices[0]],
            fanouts: self.fanout_options[indices[1]].clone(),
            locality_eta: self.etas[indices[2]],
            batch_size: self.batch_sizes[indices[3]],
            cache_ratio: ratio,
            cache_policy: policy,
            cache_update: update,
            pipelined: self.pipelined[indices[7]],
            precision: self.precisions[indices[8]],
            model,
            hidden_dim: self.hidden_dims[indices[9]],
            dropout: self.dropouts[indices[10]],
        };
        config.validate().ok().map(|()| config)
    }

    /// Every valid configuration, in lexicographic axis order.
    pub fn enumerate(&self, model: ModelKind) -> Vec<TrainingConfig> {
        let mut out = Vec::new();
        let mut indices = vec![0usize; self.num_axes()];
        loop {
            if let Some(c) = self.config_at(&indices, model) {
                out.push(c);
            }
            // Odometer increment.
            let mut axis = self.num_axes();
            loop {
                if axis == 0 {
                    return out;
                }
                axis -= 1;
                indices[axis] += 1;
                if indices[axis] < self.axis_len(axis) {
                    break;
                }
                indices[axis] = 0;
            }
        }
    }

    /// `count` valid configurations sampled uniformly at random
    /// (rejection sampling over the axis grid), seeded.
    pub fn sample(&self, count: usize, model: ModelKind, seed: u64) -> Vec<TrainingConfig> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(count);
        let mut guard = 0usize;
        while out.len() < count && guard < count * 1000 {
            guard += 1;
            let indices: Vec<usize> =
                (0..self.num_axes()).map(|a| rng.gen_range(0..self.axis_len(a))).collect();
            if let Some(c) = self.config_at(&indices, model) {
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_space_is_large() {
        let s = DesignSpace::standard();
        assert!(s.size() > 100_000);
        assert_eq!(s.num_axes(), 11);
    }

    #[test]
    fn reduced_space_enumerates_valid_configs() {
        let s = DesignSpace::reduced();
        let configs = s.enumerate(ModelKind::Sage);
        assert!(!configs.is_empty());
        assert!(configs.len() < s.size());
        for c in &configs {
            c.validate().expect("every enumerated config validates");
        }
    }

    #[test]
    fn enumerate_has_no_duplicates() {
        let s = DesignSpace::reduced();
        let configs = s.enumerate(ModelKind::Sage);
        let mut summaries: Vec<String> = configs.iter().map(TrainingConfig::summary).collect();
        let before = summaries.len();
        summaries.sort();
        summaries.dedup();
        assert_eq!(summaries.len(), before);
    }

    #[test]
    fn config_at_rejects_inconsistent_cache_combo() {
        let s = DesignSpace::standard();
        // ratio > 0 with policy None (policy index of None = 0).
        let none_idx = s.cache_policies.iter().position(|&p| p == CachePolicy::None).expect("none");
        let ratio_idx = s.cache_ratios.iter().position(|&r| r > 0.0).expect("pos ratio");
        let mut indices = vec![0usize; 11];
        indices[4] = ratio_idx;
        indices[5] = none_idx;
        assert!(s.config_at(&indices, ModelKind::Gcn).is_none());
    }

    #[test]
    fn sample_yields_valid_unique_seeded() {
        let s = DesignSpace::standard();
        let a = s.sample(50, ModelKind::Sage, 7);
        let b = s.sample(50, ModelKind::Sage, 7);
        assert_eq!(a.len(), 50);
        assert_eq!(a, b);
        for c in &a {
            c.validate().expect("sampled configs validate");
        }
    }

    #[test]
    fn axis_names_cover_all_axes() {
        let s = DesignSpace::standard();
        for axis in 0..s.num_axes() {
            assert!(!s.axis_name(axis).is_empty());
            assert!(s.axis_len(axis) > 0);
        }
    }

    #[test]
    #[should_panic(expected = "axis 11 out of range")]
    fn axis_len_bounds_checked() {
        let _ = DesignSpace::standard().axis_len(11);
    }
}
