//! The reconfigurable runtime backend.
//!
//! [`RuntimeBackend::execute`] runs Algorithm 1 of the paper under a
//! [`TrainingConfig`]: per iteration it samples a mini-batch on the
//! host, splits it against the device cache, charges transfer for the
//! misses, updates the cache, and performs a *real* training step with
//! the NN substrate — while the hardware simulator supplies phase
//! times and the memory ledger enforces device capacity.

use crate::config::TrainingConfig;
use crate::perf::{Perf, PhaseBreakdown};
use crate::RuntimeError;
use gnnav_cache::build_cache;
use gnnav_graph::Dataset;
use gnnav_hwsim::{CostModel, MemoryLedger, Platform, SimTime};
use gnnav_nn::tensor::Matrix;
use gnnav_nn::{train, Adam, GnnModel};
use gnnav_obs::names as metric;
use gnnav_sampler::batch_targets;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Probability (at `η = 1`) that a cold training target is replaced
/// by a hot one during locality-aware target scheduling.
pub const TARGET_SWAP_AT_FULL_ETA: f64 = 0.65;

/// Options controlling one backend execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionOptions {
    /// Number of epochs to simulate (and train).
    pub epochs: usize,
    /// Whether to actually train the GNN (accuracy is 0 when false —
    /// used by timing-only sweeps).
    pub train: bool,
    /// Train on at most this many mini-batches per epoch (timing still
    /// covers every batch). `None` trains on all batches.
    pub train_batches_cap: Option<usize>,
    /// RNG seed for batching, sampling, and model init.
    pub seed: u64,
    /// Learning rate of the Adam optimizer.
    pub learning_rate: f32,
}

impl Default for ExecutionOptions {
    fn default() -> Self {
        ExecutionOptions {
            epochs: 3,
            train: true,
            train_batches_cap: None,
            seed: 0x6AA7,
            learning_rate: 0.01,
        }
    }
}

impl ExecutionOptions {
    /// Fast timing-only options (no training, 1 epoch).
    pub fn timing_only() -> Self {
        ExecutionOptions { epochs: 1, train: false, ..ExecutionOptions::default() }
    }
}

/// Full result of a backend execution.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The measured performance triple and diagnostics.
    pub perf: Perf,
    /// Per-training-step loss history.
    pub loss_history: Vec<f32>,
    /// The configuration that produced this report.
    pub config: TrainingConfig,
}

/// The reconfigurable backend bound to one hardware platform.
///
/// # Example
///
/// ```no_run
/// use gnnav_runtime::{ExecutionOptions, RuntimeBackend, TrainingConfig};
/// use gnnav_graph::{Dataset, DatasetId};
/// use gnnav_hwsim::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.1)?;
/// let backend = RuntimeBackend::new(Platform::default_rtx4090());
/// let report = backend.execute(&dataset, &TrainingConfig::default(),
///                              &ExecutionOptions::default())?;
/// println!("epoch time {}, acc {:.1}%", report.perf.epoch_time,
///          report.perf.accuracy * 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeBackend {
    platform: Platform,
}

impl RuntimeBackend {
    /// Creates a backend on `platform`.
    pub fn new(platform: Platform) -> Self {
        RuntimeBackend { platform }
    }

    /// The bound platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Executes training of `dataset` under `config`, returning the
    /// measured performance.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for inconsistent
    /// configurations, [`RuntimeError::Hw`] if the device runs out of
    /// memory, or [`RuntimeError::Graph`] on sampling failures.
    pub fn execute(
        &self,
        dataset: &Dataset,
        config: &TrainingConfig,
        opts: &ExecutionOptions,
    ) -> Result<ExecutionReport, RuntimeError> {
        config.validate()?;
        if opts.epochs == 0 {
            return Err(RuntimeError::InvalidConfig("epochs must be > 0".into()));
        }
        let metrics = gnnav_obs::global();
        let _execute_span = metrics.span(metric::EXECUTE_WALL);
        let observing = metrics.is_enabled();
        let journal = metrics.journal();
        let journaling = journal.is_enabled();
        let graph = dataset.graph();
        let feats = dataset.features();
        let cost = CostModel::new(self.platform.clone());
        let mut ledger = MemoryLedger::new(self.platform.device.mem_capacity_bytes);

        // Model + static memory Γ_model.
        let mut model = GnnModel::new(
            config.model,
            feats.dim(),
            config.hidden_dim,
            feats.num_classes(),
            config.num_layers(),
            opts.seed,
        );
        model.set_dropout(config.dropout as f32);
        let bytes_per_scalar = config.precision.bytes();
        ledger.set_model_bytes(model.param_count() * bytes_per_scalar)?;

        // Cache + Γ_cache.
        let row_bytes = feats.dim() * bytes_per_scalar;
        let entries = config.cache_entries(graph.num_nodes());
        ledger.set_cache_bytes(entries * row_bytes)?;
        let mut cache = build_cache(config.cache_policy, entries, graph);

        let sampler = config.build_sampler(graph)?;
        let mut opt = Adam::new(opts.learning_rate);
        let mut rng = StdRng::seed_from_u64(opts.seed);

        // Locality-aware target scheduling (2PGraph): with bias η the
        // epoch's target list is skewed toward cache-resident ("hot")
        // vertices — cold targets are replaced by resampled hot train
        // nodes with probability TARGET_SWAP_AT_FULL_ETA·η. This keeps
        // n_iter unchanged but undertrains cold regions, producing the
        // accuracy-for-locality trade of the paper's Fig. 1b.
        let hot_mask: Vec<bool> = if config.locality_eta > 0.0 {
            let mut mask = vec![false; graph.num_nodes()];
            for v in config.hot_set(graph) {
                mask[v as usize] = true;
            }
            mask
        } else {
            Vec::new()
        };
        let hot_train: Vec<u32> = if config.locality_eta > 0.0 {
            dataset.split().train.iter().copied().filter(|&v| hot_mask[v as usize]).collect()
        } else {
            Vec::new()
        };

        let mut phases = PhaseBreakdown::default();
        let mut epoch_time_total = SimTime::ZERO;
        let mut total_nodes = 0usize;
        let mut total_edges = 0usize;
        let mut total_batches = 0usize;
        let mut n_iter = 0usize;
        let mut loss_history = Vec::new();

        // Metric accumulators: kept as plain locals inside the hot
        // loop and flushed to the registry once per execution, so the
        // per-batch cost with metrics enabled stays one branch + a few
        // integer adds (and exactly one branch when disabled).
        let mut evictions = 0usize;
        let mut wall_sample = Duration::ZERO;
        let mut wall_train = Duration::ZERO;

        for epoch in 0..opts.epochs {
            // Per-epoch bookkeeping for the journal and the epoch
            // histograms: snapshot the cumulative phase/cache state at
            // epoch entry and diff it at epoch exit, so the hot batch
            // loop itself stays untouched.
            let epoch_span = observing.then(|| metrics.span(metric::EVENT_EPOCH));
            let epoch_wall_us = journaling.then(|| journal.now_us());
            let epoch_sim_start = epoch_time_total;
            let epoch_phases_start = phases;
            let epoch_stats_start = cache.stats();
            let epoch_batches_start = total_batches;

            let mut epoch_targets = dataset.split().train.clone();
            if config.locality_eta > 0.0 && !hot_train.is_empty() {
                use rand::Rng;
                let swap_p = TARGET_SWAP_AT_FULL_ETA * config.locality_eta;
                for t in epoch_targets.iter_mut() {
                    if !hot_mask[*t as usize] && rng.gen::<f64>() < swap_p {
                        *t = hot_train[rng.gen_range(0..hot_train.len())];
                    }
                }
            }
            let batches = batch_targets(&epoch_targets, config.batch_size, &mut rng);
            n_iter = batches.len();
            for (bi, targets) in batches.iter().enumerate() {
                let sample_started = observing.then(Instant::now);
                let mb = sampler.sample(graph, targets, &mut rng)?;
                if let Some(t0) = sample_started {
                    wall_sample += t0.elapsed();
                }

                // Host: sampling.
                let t_sample = cost.t_sample(mb.expansion(), mb.num_edges());

                // Device cache: split hits/misses, transfer misses.
                let outcome = cache.lookup(&mb.nodes);
                let miss_bytes = outcome.misses.len() * row_bytes;
                let t_transfer = cost.t_transfer(miss_bytes);

                // Cache update per policy (frozen dynamic caches stop
                // replacing once full).
                let may_update = config.cache_update || cache.len() < cache.capacity();
                let replaced = if may_update { cache.update(&outcome.misses) } else { 0 };
                evictions += replaced;
                let t_replace = cost.t_replace(replaced * row_bytes, cache.len());

                // Device compute.
                let flops = model.flops_per_batch(mb.num_nodes(), mb.num_edges());
                let t_compute = cost.t_compute(flops, mb.num_nodes(), config.precision);

                // Transient memory Γ_runtime.
                ledger.begin_batch(
                    model.activation_bytes(mb.num_nodes(), bytes_per_scalar)
                        + mb.num_nodes() * row_bytes,
                )?;
                ledger.end_batch();

                phases.sample += t_sample;
                phases.transfer += t_transfer;
                phases.replace += t_replace;
                phases.compute += t_compute;
                epoch_time_total += cost.iteration_time(
                    t_sample,
                    t_transfer,
                    t_replace,
                    t_compute,
                    config.pipelined,
                );

                total_nodes += mb.num_nodes();
                total_edges += mb.num_edges();
                total_batches += 1;

                // The actual training step (Algorithm 1 lines 4–8).
                let train_this = opts.train && opts.train_batches_cap.is_none_or(|cap| bi < cap);
                if train_this {
                    let train_started = observing.then(Instant::now);
                    let x = Matrix::from_vec(mb.num_nodes(), feats.dim(), feats.gather(&mb.nodes));
                    let labels = feats.gather_labels(&mb.nodes);
                    let loss = train::train_step(
                        &mut model,
                        &mut opt,
                        &mb.subgraph,
                        &x,
                        &labels,
                        &mb.target_locals(),
                    );
                    loss_history.push(loss);
                    if let Some(t0) = train_started {
                        wall_train += t0.elapsed();
                    }
                }
            }

            if observing {
                let epoch_sim_s = epoch_time_total.as_secs() - epoch_sim_start.as_secs();
                let stats = cache.stats();
                let epoch_lookups = stats.lookups - epoch_stats_start.lookups;
                let epoch_hits = stats.hits - epoch_stats_start.hits;
                let epoch_hit_rate =
                    if epoch_lookups > 0 { epoch_hits as f64 / epoch_lookups as f64 } else { 0.0 };
                metrics.observe(metric::EPOCH_SIM, epoch_sim_s);
                metrics.observe(metric::EPOCH_HIT_RATE, epoch_hit_rate);
                if journaling {
                    let wall0 = epoch_wall_us.unwrap_or(0.0);
                    let wall_dur = journal.now_us() - wall0;
                    let sim0 = epoch_sim_start.as_micros();
                    let sim_dur = epoch_sim_s * 1e6;
                    journal.span_complete(
                        metric::EVENT_EPOCH,
                        metric::TRACK_BACKEND,
                        wall0,
                        Some(wall_dur),
                        Some(sim0),
                        Some(sim_dur),
                        vec![
                            ("epoch".into(), epoch.into()),
                            ("batches".into(), (total_batches - epoch_batches_start).into()),
                            ("hit_rate".into(), epoch_hit_rate.into()),
                        ],
                    );
                    // One sim-only span per phase, each on its own
                    // track, anchored at the epoch's simulated start:
                    // the phases overlap inside the epoch window, so
                    // side-by-side tracks read as a per-epoch phase
                    // breakdown rather than a serial schedule.
                    for (phase_name, sim_delta) in [
                        ("sample", phases.sample.as_secs() - epoch_phases_start.sample.as_secs()),
                        (
                            "transfer",
                            phases.transfer.as_secs() - epoch_phases_start.transfer.as_secs(),
                        ),
                        (
                            "replace",
                            phases.replace.as_secs() - epoch_phases_start.replace.as_secs(),
                        ),
                        (
                            "compute",
                            phases.compute.as_secs() - epoch_phases_start.compute.as_secs(),
                        ),
                    ] {
                        journal.span_complete(
                            phase_name,
                            format!("{}{}", metric::TRACK_PHASE_PREFIX, phase_name),
                            wall0,
                            None,
                            Some(sim0),
                            Some(sim_delta * 1e6),
                            Vec::new(),
                        );
                    }
                    journal.counter(
                        metric::EPOCH_HIT_RATE,
                        metric::TRACK_BACKEND,
                        epoch_hit_rate,
                        Some(sim0 + sim_dur),
                    );
                }
            }
            drop(epoch_span);
        }

        let accuracy = if opts.train {
            let x = Matrix::from_vec(graph.num_nodes(), feats.dim(), feats.matrix().to_vec());
            train::evaluate(&mut model, graph, &x, feats.labels(), &dataset.split().test)
        } else {
            0.0
        };

        let epochs_f = opts.epochs as f64;
        let inv_epochs = 1.0 / epochs_f;
        let perf = Perf {
            epoch_time: epoch_time_total * inv_epochs,
            peak_mem_bytes: ledger.peak_bytes(),
            accuracy,
            hit_rate: cache.stats().hit_rate(),
            avg_batch_nodes: total_nodes as f64 / total_batches.max(1) as f64,
            avg_batch_edges: total_edges as f64 / total_batches.max(1) as f64,
            n_iter,
            phases: PhaseBreakdown {
                sample: phases.sample * inv_epochs,
                transfer: phases.transfer * inv_epochs,
                replace: phases.replace * inv_epochs,
                compute: phases.compute * inv_epochs,
            },
        };

        if observing {
            let stats = cache.stats();
            metrics.add(metric::BACKEND_RUNS, 1);
            metrics.add(metric::BACKEND_BATCHES, total_batches as u64);
            metrics.add(metric::CACHE_HITS, stats.hits as u64);
            metrics.add(metric::CACHE_MISSES, (stats.lookups - stats.hits) as u64);
            metrics.add(metric::CACHE_EVICTIONS, evictions as u64);
            metrics.gauge_set(metric::PHASE_SAMPLE, perf.phases.sample.as_secs());
            metrics.gauge_set(metric::PHASE_TRANSFER, perf.phases.transfer.as_secs());
            metrics.gauge_set(metric::PHASE_REPLACE, perf.phases.replace.as_secs());
            metrics.gauge_set(metric::PHASE_COMPUTE, perf.phases.compute.as_secs());
            metrics.gauge_set(metric::EPOCH_TIME, perf.epoch_time.as_secs());
            metrics.gauge_set(metric::PEAK_MEM_BYTES, perf.peak_mem_bytes as f64);
            metrics.gauge_set(metric::WALL_SAMPLE, wall_sample.as_secs_f64());
            metrics.gauge_set(metric::WALL_TRAIN, wall_train.as_secs_f64());
            if let Some(&last) = loss_history.last() {
                let mean = loss_history.iter().sum::<f32>() / loss_history.len() as f32;
                metrics.gauge_set(metric::LOSS_LAST, last as f64);
                metrics.gauge_set(metric::LOSS_MEAN, mean as f64);
            }
        }
        Ok(ExecutionReport { perf, loss_history, config: config.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_cache::CachePolicy;
    use gnnav_graph::DatasetId;

    fn tiny_dataset() -> Dataset {
        Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load")
    }

    fn small_config() -> TrainingConfig {
        TrainingConfig {
            batch_size: 64,
            fanouts: vec![5, 5],
            hidden_dim: 16,
            ..TrainingConfig::default()
        }
    }

    fn fast_opts() -> ExecutionOptions {
        ExecutionOptions { epochs: 1, train_batches_cap: Some(2), ..Default::default() }
    }

    #[test]
    fn execute_produces_consistent_report() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let r = backend.execute(&d, &small_config(), &fast_opts()).expect("run");
        assert!(r.perf.epoch_time.as_secs() > 0.0);
        assert!(r.perf.peak_mem_bytes > 0);
        assert!(r.perf.n_iter >= 1);
        assert!(r.perf.avg_batch_nodes >= 64.0);
        assert!(!r.loss_history.is_empty());
        assert!(r.perf.accuracy >= 0.0 && r.perf.accuracy <= 1.0);
    }

    #[test]
    fn timing_only_skips_training() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let r =
            backend.execute(&d, &small_config(), &ExecutionOptions::timing_only()).expect("run");
        assert!(r.loss_history.is_empty());
        assert_eq!(r.perf.accuracy, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let a = backend.execute(&d, &small_config(), &fast_opts()).expect("run");
        let b = backend.execute(&d, &small_config(), &fast_opts()).expect("run");
        // The whole triple (and every diagnostic) must reproduce
        // bit-for-bit, not just the headline numbers.
        assert_eq!(a.perf, b.perf);
        assert_eq!(a.loss_history, b.loss_history);
    }

    #[test]
    fn zero_batches_yield_finite_zero_averages() {
        // An empty train split runs zero mini-batches; the batch
        // averages must come out 0.0, not NaN from a 0/0.
        let base = tiny_dataset();
        let test = base.split().test.clone();
        let d = base
            .with_split(gnnav_graph::Split { train: Vec::new(), val: Vec::new(), test })
            .expect("split");
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let r =
            backend.execute(&d, &small_config(), &ExecutionOptions::timing_only()).expect("run");
        assert_eq!(r.perf.avg_batch_nodes, 0.0);
        assert_eq!(r.perf.avg_batch_edges, 0.0);
        assert_eq!(r.perf.n_iter, 0);
        assert!(r.loss_history.is_empty());
    }

    #[test]
    fn cache_reduces_transfer_time() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let mut no_cache = small_config();
        no_cache.cache_policy = CachePolicy::None;
        no_cache.cache_ratio = 0.0;
        let mut cached = small_config();
        cached.cache_policy = CachePolicy::StaticDegree;
        cached.cache_ratio = 0.5;
        let opts = ExecutionOptions::timing_only();
        let r0 = backend.execute(&d, &no_cache, &opts).expect("run");
        let r1 = backend.execute(&d, &cached, &opts).expect("run");
        assert_eq!(r0.perf.hit_rate, 0.0);
        assert!(r1.perf.hit_rate > 0.3, "hit rate {}", r1.perf.hit_rate);
        assert!(r1.perf.phases.transfer < r0.perf.phases.transfer);
        // But the cache costs memory.
        assert!(r1.perf.peak_mem_bytes > r0.perf.peak_mem_bytes);
    }

    #[test]
    fn pipelining_reduces_epoch_time() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let mut serial = small_config();
        serial.pipelined = false;
        let mut piped = small_config();
        piped.pipelined = true;
        let opts = ExecutionOptions::timing_only();
        let rs = backend.execute(&d, &serial, &opts).expect("run");
        let rp = backend.execute(&d, &piped, &opts).expect("run");
        assert!(rp.perf.epoch_time < rs.perf.epoch_time);
    }

    #[test]
    fn oom_reported_on_tiny_device() {
        use gnnav_hwsim::DeviceProfile;
        let d = tiny_dataset();
        let mut platform = Platform::default_rtx4090();
        platform.device = DeviceProfile {
            mem_capacity_bytes: 1000, // absurdly small
            ..platform.device
        };
        let backend = RuntimeBackend::new(platform);
        let err =
            backend.execute(&d, &small_config(), &ExecutionOptions::timing_only()).unwrap_err();
        assert!(matches!(err, RuntimeError::Hw(_)));
    }

    #[test]
    fn zero_epochs_rejected() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let opts = ExecutionOptions { epochs: 0, ..Default::default() };
        assert!(matches!(
            backend.execute(&d, &small_config(), &opts),
            Err(RuntimeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn training_actually_learns_on_products() {
        // PR is the easy dataset: even a short run beats the 1/47
        // random-guess floor by a wide margin.
        let d = Dataset::load_scaled(DatasetId::OgbnProducts, 0.02).expect("load");
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let opts = ExecutionOptions { epochs: 4, ..Default::default() };
        let r = backend.execute(&d, &small_config(), &opts).expect("run");
        assert!(r.perf.accuracy > 0.3, "accuracy {}", r.perf.accuracy);
    }
}

#[cfg(test)]
mod overhead_tests {
    use super::*;
    use crate::config::TrainingConfig;
    use gnnav_graph::DatasetId;

    /// With per-iteration overhead, halving the batch size (doubling
    /// n_iter) must NOT halve epoch time — the fixed cost per
    /// iteration caps the benefit of giant batches (and the cost of
    /// small ones scales with their count).
    #[test]
    fn per_iteration_overhead_limits_batch_scaling() {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let opts = ExecutionOptions::timing_only();
        let run = |batch: usize| {
            let config = TrainingConfig { batch_size: batch, ..TrainingConfig::default() };
            backend.execute(&dataset, &config, &opts).expect("run").perf
        };
        let small = run(16);
        let large = run(128);
        // 8x fewer iterations must not yield an 8x speedup.
        let speedup = small.epoch_time.as_secs() / large.epoch_time.as_secs();
        assert!(speedup < 8.0, "batch scaling speedup {speedup} unexpectedly ideal");
        assert!(speedup > 1.0, "larger batches should still help somewhat");
    }
}
