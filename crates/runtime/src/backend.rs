//! The reconfigurable runtime backend.
//!
//! [`RuntimeBackend::execute`] runs Algorithm 1 of the paper under a
//! [`TrainingConfig`]: per iteration it samples a mini-batch on the
//! host, splits it against the device cache, charges transfer for the
//! misses, updates the cache, and performs a *real* training step with
//! the NN substrate — while the hardware simulator supplies phase
//! times and the memory ledger enforces device capacity.

use crate::config::TrainingConfig;
use crate::perf::{Perf, PhaseBreakdown};
use crate::RuntimeError;
use gnnav_cache::{build_cache, CacheStats};
use gnnav_faults::{FaultInjector, FaultKind, FaultPlan};
use gnnav_graph::Dataset;
use gnnav_hwsim::{CostModel, MemoryLedger, Platform, SimTime};
use gnnav_nn::tensor::Matrix;
use gnnav_nn::{train, Adam, GnnModel};
use gnnav_obs::names as metric;
use gnnav_sampler::batch_targets;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Probability (at `η = 1`) that a cold training target is replaced
/// by a hot one during locality-aware target scheduling.
pub const TARGET_SWAP_AT_FULL_ETA: f64 = 0.65;

/// Largest micro-batch division the degradation ladder will try
/// before falling through to fanout reduction.
pub const MAX_MICRO_BATCH: usize = 16;

/// A `LinkDegrade` fault with magnitude at or above this factor is a
/// *stall* (the transfer never completes) and is retried with
/// backoff; below it, the magnitude just multiplies transfer time.
pub const LINK_STALL_FACTOR: f64 = 1e6;

/// Options controlling one backend execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionOptions {
    /// Number of epochs to simulate (and train).
    pub epochs: usize,
    /// Whether to actually train the GNN (accuracy is 0 when false —
    /// used by timing-only sweeps).
    pub train: bool,
    /// Train on at most this many mini-batches per epoch (timing still
    /// covers every batch). `None` trains on all batches.
    pub train_batches_cap: Option<usize>,
    /// RNG seed for batching, sampling, and model init.
    pub seed: u64,
    /// Learning rate of the Adam optimizer.
    pub learning_rate: f32,
    /// Deterministic fault schedule injected into this run; `None`
    /// runs clean.
    pub fault_plan: Option<FaultPlan>,
    /// How the backend retries and degrades around faults.
    pub recovery: RecoveryPolicy,
}

impl Default for ExecutionOptions {
    fn default() -> Self {
        ExecutionOptions {
            epochs: 3,
            train: true,
            train_batches_cap: None,
            seed: 0x6AA7,
            learning_rate: 0.01,
            fault_plan: None,
            recovery: RecoveryPolicy::default(),
        }
    }
}

impl ExecutionOptions {
    /// Fast timing-only options (no training, 1 epoch).
    pub fn timing_only() -> Self {
        ExecutionOptions { epochs: 1, train: false, ..ExecutionOptions::default() }
    }
}

/// How [`RuntimeBackend::execute`] retries transient faults and
/// degrades under persistent pressure.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Bounded retries per fault site before escalating (to the
    /// degradation ladder for memory claims, to a typed error for
    /// sampling failures).
    pub max_retries: u32,
    /// Base backoff pause in simulated milliseconds; doubles on each
    /// retry and is charged to epoch time.
    pub backoff_base_ms: f64,
    /// When on, a non-finite training loss is skipped (not recorded)
    /// and the learning rate is halved instead of poisoning the
    /// loss history.
    pub nan_guard: bool,
    /// How many LR halvings the NaN guard may spend before declaring
    /// the run unrecoverable.
    pub max_lr_halvings: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { max_retries: 3, backoff_base_ms: 1.0, nan_guard: true, max_lr_halvings: 8 }
    }
}

/// One step of the graceful-degradation ladder, in escalation order:
/// shrink the feature cache, split the batch into micro-batches,
/// finally reduce sampling fanout.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DegradationStep {
    /// Halved the cache to free Γ_cache for the batch claim.
    ShrinkCache {
        /// Entries before the shrink.
        from_entries: usize,
        /// Entries after the shrink.
        to_entries: usize,
    },
    /// Split each batch's transient claim across this many
    /// micro-steps (extra kernel launches are charged).
    MicroBatch {
        /// Current division factor.
        factor: usize,
    },
    /// Halved the sampling fanouts (min 1) to shrink mini-batches.
    ReduceFanout {
        /// The fanouts now in effect.
        fanouts: Vec<usize>,
    },
}

impl DegradationStep {
    /// Stable action label for journal events.
    pub fn label(&self) -> &'static str {
        match self {
            DegradationStep::ShrinkCache { .. } => "shrink_cache",
            DegradationStep::MicroBatch { .. } => "micro_batch",
            DegradationStep::ReduceFanout { .. } => "reduce_fanout",
        }
    }
}

/// What the run had to absorb and how it recovered — part of every
/// [`ExecutionReport`]; all-zero on a clean run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryLog {
    /// Faults the plan injected into this run.
    pub faults_injected: u64,
    /// Bounded retries performed (sampling + memory claims).
    pub retries: u32,
    /// Degradation-ladder steps taken, in order.
    pub degradations: Vec<DegradationStep>,
    /// Training steps skipped by the NaN guard.
    pub nan_steps_skipped: u32,
    /// Learning-rate halvings spent by the NaN guard.
    pub lr_halvings: u32,
    /// Simulated time charged to backoff pauses and ladder work.
    pub recovery_sim: SimTime,
}

impl RecoveryLog {
    /// True when the run needed no recovery at all.
    pub fn is_clean(&self) -> bool {
        self.faults_injected == 0
            && self.retries == 0
            && self.degradations.is_empty()
            && self.nan_steps_skipped == 0
    }
}

/// Full result of a backend execution.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The measured performance triple and diagnostics.
    pub perf: Perf,
    /// Per-training-step loss history.
    pub loss_history: Vec<f32>,
    /// The configuration that produced this report.
    pub config: TrainingConfig,
    /// Faults absorbed and recovery actions taken.
    pub recovery: RecoveryLog,
}

/// The reconfigurable backend bound to one hardware platform.
///
/// # Example
///
/// ```no_run
/// use gnnav_runtime::{ExecutionOptions, RuntimeBackend, TrainingConfig};
/// use gnnav_graph::{Dataset, DatasetId};
/// use gnnav_hwsim::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.1)?;
/// let backend = RuntimeBackend::new(Platform::default_rtx4090());
/// let report = backend.execute(&dataset, &TrainingConfig::default(),
///                              &ExecutionOptions::default())?;
/// println!("epoch time {}, acc {:.1}%", report.perf.epoch_time,
///          report.perf.accuracy * 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeBackend {
    platform: Platform,
}

impl RuntimeBackend {
    /// Creates a backend on `platform`.
    pub fn new(platform: Platform) -> Self {
        RuntimeBackend { platform }
    }

    /// The bound platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Executes training of `dataset` under `config`, returning the
    /// measured performance.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for inconsistent
    /// configurations, [`RuntimeError::Hw`] if the device runs out of
    /// memory, or [`RuntimeError::Graph`] on sampling failures.
    pub fn execute(
        &self,
        dataset: &Dataset,
        config: &TrainingConfig,
        opts: &ExecutionOptions,
    ) -> Result<ExecutionReport, RuntimeError> {
        config.validate()?;
        if opts.epochs == 0 {
            return Err(RuntimeError::InvalidConfig("epochs must be > 0".into()));
        }
        if let Some(plan) = &opts.fault_plan {
            plan.validate().map_err(|e| RuntimeError::InvalidConfig(e.to_string()))?;
        }
        let policy = &opts.recovery;
        if !policy.backoff_base_ms.is_finite() || policy.backoff_base_ms < 0.0 {
            return Err(RuntimeError::InvalidConfig(format!(
                "recovery backoff_base_ms {} must be finite and >= 0",
                policy.backoff_base_ms
            )));
        }
        let injector = opts.fault_plan.as_ref().filter(|p| !p.is_empty()).map(FaultInjector::new);
        // Exponential backoff, charged to simulated time (the shift is
        // clamped so a large retry budget cannot overflow).
        let backoff = |attempt: u32| {
            SimTime::from_millis(policy.backoff_base_ms * (1u64 << attempt.min(20)) as f64)
        };
        let mut recovery = RecoveryLog::default();
        let metrics = gnnav_obs::global();
        let _execute_span = metrics.span(metric::EXECUTE_WALL);
        let observing = metrics.is_enabled();
        let journal = metrics.journal();
        let journaling = journal.is_enabled();
        let graph = dataset.graph();
        let feats = dataset.features();
        let cost = CostModel::new(self.platform.clone());
        let mut ledger = MemoryLedger::new(self.platform.device.mem_capacity_bytes);

        // Model + static memory Γ_model.
        let mut model = GnnModel::new(
            config.model,
            feats.dim(),
            config.hidden_dim,
            feats.num_classes(),
            config.num_layers(),
            opts.seed,
        );
        model.set_dropout(config.dropout as f32);
        let bytes_per_scalar = config.precision.bytes();
        ledger.set_model_bytes(model.param_count() * bytes_per_scalar)?;

        // Cache + Γ_cache.
        let row_bytes = feats.dim() * bytes_per_scalar;
        let entries = config.cache_entries(graph.num_nodes());
        ledger.set_cache_bytes(entries * row_bytes)?;
        let mut cache = build_cache(config.cache_policy, entries, graph);

        // Degradation-ladder state: the effective config starts as a
        // copy of the requested one and only diverges when persistent
        // OOM forces a ladder step. `stats_carry` accumulates the
        // stats of caches replaced by ShrinkCache so hit-rate
        // accounting stays monotone across rebuilds.
        let mut eff_config = config.clone();
        let mut cache_entries = entries;
        let mut micro_batch = 1usize;
        let mut fanout_reduced = false;
        let mut stats_carry = CacheStats::default();

        let mut sampler = config.build_sampler(graph)?;
        let mut opt = Adam::new(opts.learning_rate);
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut train_steps: u64 = 0;

        // Locality-aware target scheduling (2PGraph): with bias η the
        // epoch's target list is skewed toward cache-resident ("hot")
        // vertices — cold targets are replaced by resampled hot train
        // nodes with probability TARGET_SWAP_AT_FULL_ETA·η. This keeps
        // n_iter unchanged but undertrains cold regions, producing the
        // accuracy-for-locality trade of the paper's Fig. 1b.
        let hot_mask: Vec<bool> = if config.locality_eta > 0.0 {
            let mut mask = vec![false; graph.num_nodes()];
            for v in config.hot_set(graph) {
                mask[v as usize] = true;
            }
            mask
        } else {
            Vec::new()
        };
        let hot_train: Vec<u32> = if config.locality_eta > 0.0 {
            dataset.split().train.iter().copied().filter(|&v| hot_mask[v as usize]).collect()
        } else {
            Vec::new()
        };

        // Reusable host-side gather buffers: the batch loop refills
        // these (and the model's internal scratch arena) instead of
        // allocating, so steady-state training stays off the heap.
        let mut x_buf: Vec<f32> = Vec::new();
        let mut label_buf: Vec<u16> = Vec::new();
        let kernel_stats_start = gnnav_nn::kernel_stats();
        let par_stats_start = gnnav_par::stats();

        let mut phases = PhaseBreakdown::default();
        let mut epoch_time_total = SimTime::ZERO;
        let mut total_nodes = 0usize;
        let mut total_edges = 0usize;
        let mut total_batches = 0usize;
        let mut n_iter = 0usize;
        let mut loss_history = Vec::new();

        // Metric accumulators: kept as plain locals inside the hot
        // loop and flushed to the registry once per execution, so the
        // per-batch cost with metrics enabled stays one branch + a few
        // integer adds (and exactly one branch when disabled).
        let mut evictions = 0usize;
        let mut wall_sample = Duration::ZERO;
        let mut wall_train = Duration::ZERO;

        for epoch in 0..opts.epochs {
            // Per-epoch bookkeeping for the journal and the epoch
            // histograms: snapshot the cumulative phase/cache state at
            // epoch entry and diff it at epoch exit, so the hot batch
            // loop itself stays untouched.
            let epoch_span = observing.then(|| metrics.span(metric::EVENT_EPOCH));
            let epoch_wall_us = journaling.then(|| journal.now_us());
            let epoch_sim_start = epoch_time_total;
            let epoch_phases_start = phases;
            let epoch_stats_start = CacheStats {
                lookups: stats_carry.lookups + cache.stats().lookups,
                hits: stats_carry.hits + cache.stats().hits,
            };
            let epoch_batches_start = total_batches;

            let mut epoch_targets = dataset.split().train.clone();
            if config.locality_eta > 0.0 && !hot_train.is_empty() {
                use rand::Rng;
                let swap_p = TARGET_SWAP_AT_FULL_ETA * config.locality_eta;
                for t in epoch_targets.iter_mut() {
                    if !hot_mask[*t as usize] && rng.gen::<f64>() < swap_p {
                        *t = hot_train[rng.gen_range(0..hot_train.len())];
                    }
                }
            }
            let batches = batch_targets(&epoch_targets, config.batch_size, &mut rng);
            n_iter = batches.len();
            for (bi, targets) in batches.iter().enumerate() {
                let batch_site = total_batches as u64;

                // The whole batch attempt — sampling through the
                // transient memory claim — can be aborted and
                // restarted by the degradation ladder, so phase times
                // are only accumulated after the claim succeeds.
                let (mb, t_sample, t_transfer, t_replace, t_compute) = 'batch: loop {
                    // Host: sampling, with bounded retry of injected
                    // sampler failures.
                    let mut attempt = 0u32;
                    let mb = loop {
                        let failed = injector.as_ref().is_some_and(|inj| {
                            inj.inject(
                                FaultKind::SamplerFailure,
                                batch_site,
                                attempt,
                                Some(epoch_time_total.as_micros()),
                            )
                            .is_some()
                        });
                        if !failed {
                            let sample_started = observing.then(Instant::now);
                            let mb = sampler.sample(graph, targets, &mut rng)?;
                            if let Some(t0) = sample_started {
                                wall_sample += t0.elapsed();
                            }
                            break mb;
                        }
                        if attempt >= policy.max_retries {
                            return Err(RuntimeError::RetriesExhausted {
                                what: "mini-batch sampling".into(),
                                attempts: attempt + 1,
                                last_error: "injected sampler failure".into(),
                            });
                        }
                        let pause = backoff(attempt);
                        epoch_time_total += pause;
                        recovery.recovery_sim += pause;
                        recovery.retries += 1;
                        attempt += 1;
                    };
                    let t_sample = cost.t_sample(mb.expansion(), mb.num_edges());

                    // Device cache: split hits/misses, transfer the
                    // misses — through a possibly degraded link. A
                    // stalled link (factor >= LINK_STALL_FACTOR) is
                    // retried with backoff; a slow one just stretches
                    // the transfer.
                    let outcome = cache.lookup(&mb.nodes);
                    let miss_bytes = outcome.misses.len() * row_bytes;
                    let mut t_transfer = cost.t_transfer(miss_bytes);
                    let mut attempt = 0u32;
                    loop {
                        match injector.as_ref().and_then(|inj| {
                            inj.inject(
                                FaultKind::LinkDegrade,
                                batch_site,
                                attempt,
                                Some(epoch_time_total.as_micros()),
                            )
                        }) {
                            Some(factor) if factor >= LINK_STALL_FACTOR => {
                                if attempt >= policy.max_retries {
                                    return Err(RuntimeError::RetriesExhausted {
                                        what: "miss transfer (stalled link)".into(),
                                        attempts: attempt + 1,
                                        last_error: format!(
                                            "link stalled (degradation factor {factor})"
                                        ),
                                    });
                                }
                                let pause = backoff(attempt);
                                epoch_time_total += pause;
                                recovery.recovery_sim += pause;
                                recovery.retries += 1;
                                attempt += 1;
                            }
                            Some(factor) => {
                                t_transfer = t_transfer * factor.max(1.0);
                                break;
                            }
                            None => break,
                        }
                    }

                    // Cache update per policy (frozen dynamic caches
                    // stop replacing once full).
                    let may_update = config.cache_update || cache.len() < cache.capacity();
                    let replaced = if may_update { cache.update(&outcome.misses) } else { 0 };
                    evictions += replaced;
                    let t_replace = cost.t_replace(replaced * row_bytes, cache.len());

                    // Device compute; micro-batching pays one extra
                    // kernel launch per additional micro-step.
                    let flops = model.flops_per_batch(mb.num_nodes(), mb.num_edges());
                    let mut t_compute = cost.t_compute(flops, mb.num_nodes(), config.precision);
                    if micro_batch > 1 {
                        t_compute += SimTime::from_micros(
                            self.platform.device.launch_overhead_us * (micro_batch - 1) as f64,
                        );
                    }

                    // Transient memory Γ_runtime: bounded retry with
                    // backoff, then the degradation ladder.
                    let base_claim = model.activation_bytes(mb.num_nodes(), bytes_per_scalar)
                        + mb.num_nodes() * row_bytes;
                    let mut attempt = 0u32;
                    let claim_err = loop {
                        let claim = base_claim.div_ceil(micro_batch);
                        let requested = match injector.as_ref().and_then(|inj| {
                            inj.inject(
                                FaultKind::TransientOom,
                                batch_site,
                                attempt,
                                Some(epoch_time_total.as_micros()),
                            )
                        }) {
                            // A spike multiplies the claim; the cast
                            // saturates at usize::MAX for extreme
                            // magnitudes.
                            Some(spike) => (claim as f64 * spike.max(1.0)).ceil() as usize,
                            None => claim,
                        };
                        match ledger.begin_batch(requested) {
                            Ok(()) => break None,
                            Err(_) if attempt < policy.max_retries => {
                                let pause = backoff(attempt);
                                epoch_time_total += pause;
                                recovery.recovery_sim += pause;
                                recovery.retries += 1;
                                attempt += 1;
                            }
                            Err(e) => break Some(e),
                        }
                    };
                    let oom = match claim_err {
                        None => {
                            ledger.end_batch();
                            break 'batch (mb, t_sample, t_transfer, t_replace, t_compute);
                        }
                        Some(e) => e,
                    };

                    // Retries exhausted: walk the ladder one rung and
                    // re-run the batch under the degraded setup. Each
                    // rung strictly shrinks remaining headroom to
                    // consume (cache halvings are finite, micro-batch
                    // is capped, fanout reduction fires once), so this
                    // loop terminates.
                    let step = if cache_entries > 0 {
                        let to_entries = cache_entries / 2;
                        stats_carry.lookups += cache.stats().lookups;
                        stats_carry.hits += cache.stats().hits;
                        cache = build_cache(config.cache_policy, to_entries, graph);
                        ledger.set_cache_bytes(to_entries * row_bytes)?;
                        let rebuild = cost.t_replace(to_entries * row_bytes, to_entries.max(1));
                        epoch_time_total += rebuild;
                        recovery.recovery_sim += rebuild;
                        let step = DegradationStep::ShrinkCache {
                            from_entries: cache_entries,
                            to_entries,
                        };
                        cache_entries = to_entries;
                        step
                    } else if micro_batch < MAX_MICRO_BATCH {
                        micro_batch *= 2;
                        let pause = SimTime::from_micros(self.platform.device.launch_overhead_us);
                        epoch_time_total += pause;
                        recovery.recovery_sim += pause;
                        DegradationStep::MicroBatch { factor: micro_batch }
                    } else if !fanout_reduced {
                        fanout_reduced = true;
                        for f in eff_config.fanouts.iter_mut() {
                            *f = (*f / 2).max(1);
                        }
                        sampler = eff_config.build_sampler(graph)?;
                        DegradationStep::ReduceFanout { fanouts: eff_config.fanouts.clone() }
                    } else {
                        return Err(RuntimeError::RetriesExhausted {
                            what: "transient memory claim (degradation ladder exhausted)".into(),
                            attempts: attempt + 1,
                            last_error: oom.to_string(),
                        });
                    };
                    if journaling {
                        journal.instant(
                            metric::EVENT_RECOVERY,
                            metric::TRACK_BACKEND,
                            Some(epoch_time_total.as_micros()),
                            vec![
                                ("action".into(), step.label().into()),
                                ("batch".into(), batch_site.into()),
                                ("detail".into(), format!("{step:?}").into()),
                            ],
                        );
                    }
                    recovery.degradations.push(step);
                };

                phases.sample += t_sample;
                phases.transfer += t_transfer;
                phases.replace += t_replace;
                phases.compute += t_compute;
                epoch_time_total += cost.iteration_time(
                    t_sample,
                    t_transfer,
                    t_replace,
                    t_compute,
                    config.pipelined,
                );

                total_nodes += mb.num_nodes();
                total_edges += mb.num_edges();
                total_batches += 1;

                // The actual training step (Algorithm 1 lines 4–8).
                let train_this = opts.train && opts.train_batches_cap.is_none_or(|cap| bi < cap);
                if train_this {
                    let train_started = observing.then(Instant::now);
                    feats.gather_into(&mb.nodes, &mut x_buf);
                    let x =
                        Matrix::from_vec(mb.num_nodes(), feats.dim(), std::mem::take(&mut x_buf));
                    feats.gather_labels_into(&mb.nodes, &mut label_buf);
                    let step_site = train_steps;
                    train_steps += 1;
                    let mut loss = train::train_step(
                        &mut model,
                        &mut opt,
                        &mb.subgraph,
                        &x,
                        &label_buf,
                        &mb.target_locals(),
                    );
                    x_buf = x.into_vec();
                    if injector
                        .as_ref()
                        .and_then(|inj| {
                            inj.inject(
                                FaultKind::NanLoss,
                                step_site,
                                0,
                                Some(epoch_time_total.as_micros()),
                            )
                        })
                        .is_some()
                    {
                        loss = f32::NAN;
                    }
                    if !loss.is_finite() && policy.nan_guard {
                        // NaN guard: drop the poisoned step from the
                        // history and anneal the LR; a bounded number
                        // of halvings separates a recoverable blip
                        // from a divergent run.
                        recovery.nan_steps_skipped += 1;
                        if recovery.lr_halvings >= policy.max_lr_halvings {
                            return Err(RuntimeError::RetriesExhausted {
                                what: "NaN-loss recovery (learning-rate floor reached)".into(),
                                attempts: recovery.nan_steps_skipped,
                                last_error: format!("non-finite loss at training step {step_site}"),
                            });
                        }
                        opt.set_lr(opt.lr() * 0.5);
                        recovery.lr_halvings += 1;
                        if journaling {
                            journal.instant(
                                metric::EVENT_RECOVERY,
                                metric::TRACK_BACKEND,
                                Some(epoch_time_total.as_micros()),
                                vec![
                                    ("action".into(), "nan_guard".into()),
                                    ("step".into(), step_site.into()),
                                    ("lr".into(), (opt.lr() as f64).into()),
                                ],
                            );
                        }
                    } else {
                        loss_history.push(loss);
                    }
                    if let Some(t0) = train_started {
                        wall_train += t0.elapsed();
                    }
                }
            }

            if observing {
                let epoch_sim_s = epoch_time_total.as_secs() - epoch_sim_start.as_secs();
                let stats = CacheStats {
                    lookups: stats_carry.lookups + cache.stats().lookups,
                    hits: stats_carry.hits + cache.stats().hits,
                };
                let epoch_lookups = stats.lookups - epoch_stats_start.lookups;
                let epoch_hits = stats.hits - epoch_stats_start.hits;
                let epoch_hit_rate =
                    if epoch_lookups > 0 { epoch_hits as f64 / epoch_lookups as f64 } else { 0.0 };
                metrics.observe(metric::EPOCH_SIM, epoch_sim_s);
                metrics.observe(metric::EPOCH_HIT_RATE, epoch_hit_rate);
                if journaling {
                    let wall0 = epoch_wall_us.unwrap_or(0.0);
                    let wall_dur = journal.now_us() - wall0;
                    let sim0 = epoch_sim_start.as_micros();
                    let sim_dur = epoch_sim_s * 1e6;
                    journal.span_complete(
                        metric::EVENT_EPOCH,
                        metric::TRACK_BACKEND,
                        wall0,
                        Some(wall_dur),
                        Some(sim0),
                        Some(sim_dur),
                        vec![
                            ("epoch".into(), epoch.into()),
                            ("batches".into(), (total_batches - epoch_batches_start).into()),
                            ("hit_rate".into(), epoch_hit_rate.into()),
                        ],
                    );
                    // One sim-only span per phase, each on its own
                    // track, anchored at the epoch's simulated start:
                    // the phases overlap inside the epoch window, so
                    // side-by-side tracks read as a per-epoch phase
                    // breakdown rather than a serial schedule.
                    for (phase_name, sim_delta) in [
                        ("sample", phases.sample.as_secs() - epoch_phases_start.sample.as_secs()),
                        (
                            "transfer",
                            phases.transfer.as_secs() - epoch_phases_start.transfer.as_secs(),
                        ),
                        (
                            "replace",
                            phases.replace.as_secs() - epoch_phases_start.replace.as_secs(),
                        ),
                        (
                            "compute",
                            phases.compute.as_secs() - epoch_phases_start.compute.as_secs(),
                        ),
                    ] {
                        journal.span_complete(
                            phase_name,
                            format!("{}{}", metric::TRACK_PHASE_PREFIX, phase_name),
                            wall0,
                            None,
                            Some(sim0),
                            Some(sim_delta * 1e6),
                            Vec::new(),
                        );
                    }
                    journal.counter(
                        metric::EPOCH_HIT_RATE,
                        metric::TRACK_BACKEND,
                        epoch_hit_rate,
                        Some(sim0 + sim_dur),
                    );
                }
            }
            drop(epoch_span);
        }

        let accuracy = if opts.train {
            let x = Matrix::from_vec(graph.num_nodes(), feats.dim(), feats.matrix().to_vec());
            train::evaluate(&mut model, graph, &x, feats.labels(), &dataset.split().test)
        } else {
            0.0
        };

        let epochs_f = opts.epochs as f64;
        let inv_epochs = 1.0 / epochs_f;
        let total_stats = CacheStats {
            lookups: stats_carry.lookups + cache.stats().lookups,
            hits: stats_carry.hits + cache.stats().hits,
        };
        recovery.faults_injected = injector.as_ref().map_or(0, |inj| inj.total_injected());
        let perf = Perf {
            epoch_time: epoch_time_total * inv_epochs,
            peak_mem_bytes: ledger.peak_bytes(),
            accuracy,
            hit_rate: total_stats.hit_rate(),
            avg_batch_nodes: total_nodes as f64 / total_batches.max(1) as f64,
            avg_batch_edges: total_edges as f64 / total_batches.max(1) as f64,
            n_iter,
            phases: PhaseBreakdown {
                sample: phases.sample * inv_epochs,
                transfer: phases.transfer * inv_epochs,
                replace: phases.replace * inv_epochs,
                compute: phases.compute * inv_epochs,
            },
        };

        if observing {
            let stats = total_stats;
            metrics.add(metric::BACKEND_RUNS, 1);
            metrics.add(metric::BACKEND_BATCHES, total_batches as u64);
            metrics.add(metric::CACHE_HITS, stats.hits as u64);
            metrics.add(metric::CACHE_MISSES, (stats.lookups - stats.hits) as u64);
            metrics.add(metric::CACHE_EVICTIONS, evictions as u64);
            // Recovery counters are added even when zero so the
            // perf-gate baselines pin them at zero on the clean path.
            metrics.add(metric::FAULTS_INJECTED, 0);
            metrics.add(metric::BACKEND_RETRIES, recovery.retries as u64);
            metrics.add(metric::BACKEND_DEGRADATIONS, recovery.degradations.len() as u64);
            metrics.add(metric::BACKEND_NAN_SKIPS, recovery.nan_steps_skipped as u64);
            metrics.gauge_set(metric::PHASE_SAMPLE, perf.phases.sample.as_secs());
            metrics.gauge_set(metric::PHASE_TRANSFER, perf.phases.transfer.as_secs());
            metrics.gauge_set(metric::PHASE_REPLACE, perf.phases.replace.as_secs());
            metrics.gauge_set(metric::PHASE_COMPUTE, perf.phases.compute.as_secs());
            metrics.gauge_set(metric::EPOCH_TIME, perf.epoch_time.as_secs());
            metrics.gauge_set(metric::PEAK_MEM_BYTES, perf.peak_mem_bytes as f64);
            metrics.gauge_set(metric::WALL_SAMPLE, wall_sample.as_secs_f64());
            metrics.gauge_set(metric::WALL_TRAIN, wall_train.as_secs_f64());
            if let Some(&last) = loss_history.last() {
                let mean = loss_history.iter().sum::<f32>() / loss_history.len() as f32;
                metrics.gauge_set(metric::LOSS_LAST, last as f64);
                metrics.gauge_set(metric::LOSS_MEAN, mean as f64);
            }
            // Kernel-level counters: deltas of the process-global nn /
            // gnnav-par stats across this execution (concurrent
            // executions may interleave into each other's deltas; the
            // perf baselines run serially, where the deltas are exact).
            let kernel_stats = gnnav_nn::kernel_stats();
            let par_stats = gnnav_par::stats();
            let matmul_calls = kernel_stats.matmul_calls - kernel_stats_start.matmul_calls;
            let matmul_flops = kernel_stats.matmul_flops - kernel_stats_start.matmul_flops;
            let par_tasks = par_stats.tasks - par_stats_start.tasks;
            let par_regions = par_stats.regions - par_stats_start.regions;
            metrics.add(metric::NN_MATMUL_CALLS, matmul_calls);
            metrics.add(metric::NN_MATMUL_FLOPS, matmul_flops);
            metrics.add(metric::NN_KERNEL_PAR_TASKS, par_tasks);
            metrics.add(metric::NN_KERNEL_PAR_REGIONS, par_regions);
            metrics.gauge_set(metric::PAR_POOL_THREADS, gnnav_par::effective_threads() as f64);
            let train_wall = wall_train.as_secs_f64();
            if train_wall > 0.0 {
                metrics.gauge_set(metric::NN_MATMUL_GFLOPS, matmul_flops as f64 / train_wall / 1e9);
            }
            if journaling {
                journal.instant(
                    metric::EVENT_KERNELS,
                    metric::TRACK_BACKEND,
                    Some(epoch_time_total.as_micros()),
                    vec![
                        ("matmul_calls".into(), matmul_calls.into()),
                        ("matmul_flops".into(), matmul_flops.into()),
                        ("par_tasks".into(), par_tasks.into()),
                        ("par_regions".into(), par_regions.into()),
                    ],
                );
            }
        }
        Ok(ExecutionReport { perf, loss_history, config: config.clone(), recovery })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_cache::CachePolicy;
    use gnnav_graph::DatasetId;

    fn tiny_dataset() -> Dataset {
        Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load")
    }

    fn small_config() -> TrainingConfig {
        TrainingConfig {
            batch_size: 64,
            fanouts: vec![5, 5],
            hidden_dim: 16,
            ..TrainingConfig::default()
        }
    }

    fn fast_opts() -> ExecutionOptions {
        ExecutionOptions { epochs: 1, train_batches_cap: Some(2), ..Default::default() }
    }

    #[test]
    fn execute_produces_consistent_report() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let r = backend.execute(&d, &small_config(), &fast_opts()).expect("run");
        assert!(r.perf.epoch_time.as_secs() > 0.0);
        assert!(r.perf.peak_mem_bytes > 0);
        assert!(r.perf.n_iter >= 1);
        assert!(r.perf.avg_batch_nodes >= 64.0);
        assert!(!r.loss_history.is_empty());
        assert!(r.perf.accuracy >= 0.0 && r.perf.accuracy <= 1.0);
    }

    #[test]
    fn timing_only_skips_training() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let r =
            backend.execute(&d, &small_config(), &ExecutionOptions::timing_only()).expect("run");
        assert!(r.loss_history.is_empty());
        assert_eq!(r.perf.accuracy, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let a = backend.execute(&d, &small_config(), &fast_opts()).expect("run");
        let b = backend.execute(&d, &small_config(), &fast_opts()).expect("run");
        // The whole triple (and every diagnostic) must reproduce
        // bit-for-bit, not just the headline numbers.
        assert_eq!(a.perf, b.perf);
        assert_eq!(a.loss_history, b.loss_history);
    }

    #[test]
    fn zero_batches_yield_finite_zero_averages() {
        // An empty train split runs zero mini-batches; the batch
        // averages must come out 0.0, not NaN from a 0/0.
        let base = tiny_dataset();
        let test = base.split().test.clone();
        let d = base
            .with_split(gnnav_graph::Split { train: Vec::new(), val: Vec::new(), test })
            .expect("split");
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let r =
            backend.execute(&d, &small_config(), &ExecutionOptions::timing_only()).expect("run");
        assert_eq!(r.perf.avg_batch_nodes, 0.0);
        assert_eq!(r.perf.avg_batch_edges, 0.0);
        assert_eq!(r.perf.n_iter, 0);
        assert!(r.loss_history.is_empty());
    }

    #[test]
    fn cache_reduces_transfer_time() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let mut no_cache = small_config();
        no_cache.cache_policy = CachePolicy::None;
        no_cache.cache_ratio = 0.0;
        let mut cached = small_config();
        cached.cache_policy = CachePolicy::StaticDegree;
        cached.cache_ratio = 0.5;
        let opts = ExecutionOptions::timing_only();
        let r0 = backend.execute(&d, &no_cache, &opts).expect("run");
        let r1 = backend.execute(&d, &cached, &opts).expect("run");
        assert_eq!(r0.perf.hit_rate, 0.0);
        assert!(r1.perf.hit_rate > 0.3, "hit rate {}", r1.perf.hit_rate);
        assert!(r1.perf.phases.transfer < r0.perf.phases.transfer);
        // But the cache costs memory.
        assert!(r1.perf.peak_mem_bytes > r0.perf.peak_mem_bytes);
    }

    #[test]
    fn pipelining_reduces_epoch_time() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let mut serial = small_config();
        serial.pipelined = false;
        let mut piped = small_config();
        piped.pipelined = true;
        let opts = ExecutionOptions::timing_only();
        let rs = backend.execute(&d, &serial, &opts).expect("run");
        let rp = backend.execute(&d, &piped, &opts).expect("run");
        assert!(rp.perf.epoch_time < rs.perf.epoch_time);
    }

    #[test]
    fn oom_reported_on_tiny_device() {
        use gnnav_hwsim::DeviceProfile;
        let d = tiny_dataset();
        let mut platform = Platform::default_rtx4090();
        platform.device = DeviceProfile {
            mem_capacity_bytes: 1000, // absurdly small
            ..platform.device
        };
        let backend = RuntimeBackend::new(platform);
        let err =
            backend.execute(&d, &small_config(), &ExecutionOptions::timing_only()).unwrap_err();
        assert!(matches!(err, RuntimeError::Hw(_)));
    }

    #[test]
    fn zero_epochs_rejected() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let opts = ExecutionOptions { epochs: 0, ..Default::default() };
        assert!(matches!(
            backend.execute(&d, &small_config(), &opts),
            Err(RuntimeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn training_actually_learns_on_products() {
        // PR is the easy dataset: even a short run beats the 1/47
        // random-guess floor by a wide margin.
        let d = Dataset::load_scaled(DatasetId::OgbnProducts, 0.02).expect("load");
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let opts = ExecutionOptions { epochs: 4, ..Default::default() };
        let r = backend.execute(&d, &small_config(), &opts).expect("run");
        assert!(r.perf.accuracy > 0.3, "accuracy {}", r.perf.accuracy);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use gnnav_faults::{FaultKind, FaultPlan, FaultSpec};
    use gnnav_graph::DatasetId;

    fn tiny_dataset() -> Dataset {
        Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load")
    }

    fn small_config() -> TrainingConfig {
        TrainingConfig {
            batch_size: 64,
            fanouts: vec![5, 5],
            hidden_dim: 16,
            ..TrainingConfig::default()
        }
    }

    fn opts_with(plan: FaultPlan) -> ExecutionOptions {
        ExecutionOptions {
            epochs: 1,
            train_batches_cap: Some(4),
            fault_plan: Some(plan),
            ..Default::default()
        }
    }

    #[test]
    fn transient_oom_survived_with_retries() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        // A huge spike on the first two batches that clears on the
        // third attempt — within the default retry budget.
        let plan = FaultPlan::new(11).with_fault(
            FaultSpec::new(FaultKind::TransientOom)
                .with_magnitude(1e12)
                .with_window(0, 2)
                .with_duration_attempts(2),
        );
        let r = backend.execute(&d, &small_config(), &opts_with(plan)).expect("survive");
        assert_eq!(r.recovery.retries, 4, "2 faulty batches x 2 failed attempts");
        assert!(r.recovery.faults_injected >= 4);
        assert!(r.recovery.degradations.is_empty());
        assert!(r.recovery.recovery_sim > SimTime::ZERO);
        assert!(!r.recovery.is_clean());
        assert!(r.perf.epoch_time.as_secs() > 0.0);
    }

    #[test]
    fn transient_oom_persistent_exhausts_ladder_with_typed_error() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        // Persistent astronomically-large spike: retries, every ladder
        // rung, and fanout reduction all fail — the error must be
        // typed, never a panic.
        let plan = FaultPlan::new(12)
            .with_fault(FaultSpec::new(FaultKind::TransientOom).with_magnitude(1e15));
        let err = backend.execute(&d, &small_config(), &opts_with(plan)).unwrap_err();
        assert!(
            matches!(err, RuntimeError::RetriesExhausted { .. }),
            "expected RetriesExhausted, got {err}"
        );
        assert!(err.to_string().contains("degradation ladder exhausted"));
    }

    #[test]
    fn degradation_ladder_absorbs_real_memory_pressure() {
        use gnnav_hwsim::DeviceProfile;
        let d = tiny_dataset();
        let config = small_config();
        let opts = ExecutionOptions { epochs: 1, train_batches_cap: Some(2), ..Default::default() };

        // Measure the clean peak, then rerun on a device that cannot
        // quite hold it: the ladder must shrink the cache instead of
        // aborting.
        let clean = RuntimeBackend::new(Platform::default_rtx4090())
            .execute(&d, &config, &opts)
            .expect("clean run");
        let mut platform = Platform::default_rtx4090();
        platform.device =
            DeviceProfile { mem_capacity_bytes: clean.perf.peak_mem_bytes - 1, ..platform.device };
        let r = RuntimeBackend::new(platform).execute(&d, &config, &opts).expect("degraded run");
        assert!(
            r.recovery
                .degradations
                .iter()
                .any(|s| matches!(s, DegradationStep::ShrinkCache { .. })),
            "expected a cache shrink, got {:?}",
            r.recovery.degradations
        );
        assert_eq!(r.recovery.faults_injected, 0, "no injection involved");
        assert!(r.perf.peak_mem_bytes < clean.perf.peak_mem_bytes);
        // Degradation costs simulated time.
        assert!(r.recovery.recovery_sim > SimTime::ZERO);
    }

    #[test]
    fn sampler_failure_survived_then_exhausted() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let transient = FaultPlan::new(13).with_fault(
            FaultSpec::new(FaultKind::SamplerFailure).with_window(0, 3).with_duration_attempts(2),
        );
        let r = backend.execute(&d, &small_config(), &opts_with(transient)).expect("survive");
        assert_eq!(r.recovery.retries, 6, "3 faulty batches x 2 failed attempts");

        let persistent = FaultPlan::new(13).with_fault(FaultSpec::new(FaultKind::SamplerFailure));
        let err = backend.execute(&d, &small_config(), &opts_with(persistent)).unwrap_err();
        match err {
            RuntimeError::RetriesExhausted { what, attempts, .. } => {
                assert!(what.contains("sampling"), "what: {what}");
                assert_eq!(attempts, 4, "initial attempt + 3 retries");
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn link_degrade_stretches_transfer_and_stall_errors_out() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let opts = |plan| ExecutionOptions { train: false, ..opts_with(plan) };

        let clean = backend
            .execute(
                &d,
                &small_config(),
                &ExecutionOptions { train: false, ..opts_with(FaultPlan::new(0)) },
            )
            .expect("clean");
        let slow = FaultPlan::new(14)
            .with_fault(FaultSpec::new(FaultKind::LinkDegrade).with_magnitude(50.0));
        let r = backend.execute(&d, &small_config(), &opts(slow)).expect("degraded");
        assert!(
            r.perf.phases.transfer > clean.perf.phases.transfer * 10.0,
            "50x link degradation must dominate transfer time ({} vs {})",
            r.perf.phases.transfer,
            clean.perf.phases.transfer
        );

        // A persistent stall exhausts its retries.
        let stalled = FaultPlan::new(14)
            .with_fault(FaultSpec::new(FaultKind::LinkDegrade).with_magnitude(LINK_STALL_FACTOR));
        let err = backend.execute(&d, &small_config(), &opts(stalled)).unwrap_err();
        assert!(err.to_string().contains("stalled link"), "got {err}");

        // A transient stall (clears within the retry budget) survives.
        let blip = FaultPlan::new(14).with_fault(
            FaultSpec::new(FaultKind::LinkDegrade)
                .with_magnitude(LINK_STALL_FACTOR)
                .with_duration_attempts(1),
        );
        let r = backend.execute(&d, &small_config(), &opts(blip)).expect("blip survived");
        assert!(r.recovery.retries > 0);
    }

    #[test]
    fn nan_guard_skips_steps_and_halves_lr() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let plan =
            FaultPlan::new(15).with_fault(FaultSpec::new(FaultKind::NanLoss).with_window(0, 3));
        let clean =
            backend.execute(&d, &small_config(), &opts_with(FaultPlan::new(15))).expect("clean");
        let r = backend.execute(&d, &small_config(), &opts_with(plan)).expect("guarded");
        assert_eq!(r.recovery.nan_steps_skipped, 3);
        assert_eq!(r.recovery.lr_halvings, 3);
        assert_eq!(r.loss_history.len() + 3, clean.loss_history.len());
        assert!(r.loss_history.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn nan_guard_exhaustion_is_typed_error() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let plan = FaultPlan::new(16).with_fault(FaultSpec::new(FaultKind::NanLoss));
        let opts = ExecutionOptions {
            recovery: RecoveryPolicy { max_lr_halvings: 1, ..Default::default() },
            ..opts_with(plan)
        };
        let err = backend.execute(&d, &small_config(), &opts).unwrap_err();
        match err {
            RuntimeError::RetriesExhausted { what, .. } => {
                assert!(what.contains("NaN"), "what: {what}")
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn nan_guard_off_keeps_old_behavior() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let plan =
            FaultPlan::new(17).with_fault(FaultSpec::new(FaultKind::NanLoss).with_window(0, 1));
        let opts = ExecutionOptions {
            recovery: RecoveryPolicy { nan_guard: false, ..Default::default() },
            ..opts_with(plan)
        };
        let r = backend.execute(&d, &small_config(), &opts).expect("no guard, no error");
        assert!(r.loss_history.iter().any(|l| l.is_nan()), "NaN recorded verbatim");
        assert_eq!(r.recovery.nan_steps_skipped, 0);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let plan = FaultPlan::new(18)
            .with_fault(
                FaultSpec::new(FaultKind::TransientOom)
                    .with_probability(0.5)
                    .with_magnitude(1e12)
                    .with_duration_attempts(1),
            )
            .with_fault(FaultSpec::new(FaultKind::NanLoss).with_probability(0.5))
            .with_fault(
                FaultSpec::new(FaultKind::LinkDegrade).with_probability(0.5).with_magnitude(3.0),
            );
        let a = backend.execute(&d, &small_config(), &opts_with(plan.clone())).expect("a");
        let b = backend.execute(&d, &small_config(), &opts_with(plan)).expect("b");
        assert_eq!(a.perf, b.perf);
        assert_eq!(a.loss_history, b.loss_history);
        assert_eq!(a.recovery, b.recovery);
        assert!(!a.recovery.is_clean(), "plan at p=0.5 should have fired somewhere");
    }

    #[test]
    fn invalid_plan_and_policy_rejected_as_config_errors() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let bad_plan =
            FaultPlan::new(0).with_fault(FaultSpec::new(FaultKind::NanLoss).with_probability(2.0));
        assert!(matches!(
            backend.execute(&d, &small_config(), &opts_with(bad_plan)),
            Err(RuntimeError::InvalidConfig(_))
        ));
        let bad_policy = ExecutionOptions {
            recovery: RecoveryPolicy { backoff_base_ms: f64::NAN, ..Default::default() },
            ..ExecutionOptions::timing_only()
        };
        assert!(matches!(
            backend.execute(&d, &small_config(), &bad_policy),
            Err(RuntimeError::InvalidConfig(_))
        ));
    }
}

#[cfg(test)]
mod overhead_tests {
    use super::*;
    use crate::config::TrainingConfig;
    use gnnav_graph::DatasetId;

    /// With per-iteration overhead, halving the batch size (doubling
    /// n_iter) must NOT halve epoch time — the fixed cost per
    /// iteration caps the benefit of giant batches (and the cost of
    /// small ones scales with their count).
    #[test]
    fn per_iteration_overhead_limits_batch_scaling() {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let opts = ExecutionOptions::timing_only();
        let run = |batch: usize| {
            let config = TrainingConfig { batch_size: batch, ..TrainingConfig::default() };
            backend.execute(&dataset, &config, &opts).expect("run").perf
        };
        let small = run(16);
        let large = run(128);
        // 8x fewer iterations must not yield an 8x speedup.
        let speedup = small.epoch_time.as_secs() / large.epoch_time.as_secs();
        assert!(speedup < 8.0, "batch scaling speedup {speedup} unexpectedly ideal");
        assert!(speedup > 1.0, "larger batches should still help somewhat");
    }
}
