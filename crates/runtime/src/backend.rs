//! The reconfigurable runtime backend.
//!
//! [`RuntimeBackend::execute`] runs Algorithm 1 of the paper under a
//! [`TrainingConfig`]: per iteration it samples a mini-batch on the
//! host, splits it against the device cache, charges transfer for the
//! misses, updates the cache, and performs a *real* training step with
//! the NN substrate — while the hardware simulator supplies phase
//! times and the memory ledger enforces device capacity.

use crate::config::TrainingConfig;
use crate::perf::Perf;
use crate::session::ExecutionSession;
use crate::RuntimeError;
use gnnav_faults::FaultPlan;
use gnnav_graph::Dataset;
use gnnav_hwsim::{Platform, SimTime};

/// Probability (at `η = 1`) that a cold training target is replaced
/// by a hot one during locality-aware target scheduling.
pub const TARGET_SWAP_AT_FULL_ETA: f64 = 0.65;

/// Largest micro-batch division the degradation ladder will try
/// before falling through to fanout reduction.
pub const MAX_MICRO_BATCH: usize = 16;

/// A `LinkDegrade` fault with magnitude at or above this factor is a
/// *stall* (the transfer never completes) and is retried with
/// backoff; below it, the magnitude just multiplies transfer time.
pub const LINK_STALL_FACTOR: f64 = 1e6;

/// Options controlling one backend execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionOptions {
    /// Number of epochs to simulate (and train).
    pub epochs: usize,
    /// Whether to actually train the GNN (accuracy is 0 when false —
    /// used by timing-only sweeps).
    pub train: bool,
    /// Train on at most this many mini-batches per epoch (timing still
    /// covers every batch). `None` trains on all batches.
    pub train_batches_cap: Option<usize>,
    /// RNG seed for batching, sampling, and model init.
    pub seed: u64,
    /// Learning rate of the Adam optimizer.
    pub learning_rate: f32,
    /// Deterministic fault schedule injected into this run; `None`
    /// runs clean.
    pub fault_plan: Option<FaultPlan>,
    /// How the backend retries and degrades around faults.
    pub recovery: RecoveryPolicy,
    /// Whether this execution writes span/instant events into the
    /// journal (when the journal itself is enabled). Profiler probe
    /// runs and comparison templates set this to `false` so the
    /// exported trace carries exactly one backend timeline — the
    /// navigated execution.
    pub journal: bool,
}

impl Default for ExecutionOptions {
    fn default() -> Self {
        ExecutionOptions {
            epochs: 3,
            train: true,
            train_batches_cap: None,
            seed: 0x6AA7,
            learning_rate: 0.01,
            fault_plan: None,
            recovery: RecoveryPolicy::default(),
            journal: true,
        }
    }
}

impl ExecutionOptions {
    /// Fast timing-only options (no training, 1 epoch).
    pub fn timing_only() -> Self {
        ExecutionOptions { epochs: 1, train: false, ..ExecutionOptions::default() }
    }
}

/// How [`RuntimeBackend::execute`] retries transient faults and
/// degrades under persistent pressure.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Bounded retries per fault site before escalating (to the
    /// degradation ladder for memory claims, to a typed error for
    /// sampling failures).
    pub max_retries: u32,
    /// Base backoff pause in simulated milliseconds; doubles on each
    /// retry and is charged to epoch time.
    pub backoff_base_ms: f64,
    /// When on, a non-finite training loss is skipped (not recorded)
    /// and the learning rate is halved instead of poisoning the
    /// loss history.
    pub nan_guard: bool,
    /// How many LR halvings the NaN guard may spend before declaring
    /// the run unrecoverable.
    pub max_lr_halvings: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { max_retries: 3, backoff_base_ms: 1.0, nan_guard: true, max_lr_halvings: 8 }
    }
}

/// One step of the graceful-degradation ladder, in escalation order:
/// shrink the feature cache, split the batch into micro-batches,
/// finally reduce sampling fanout.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DegradationStep {
    /// Halved the cache to free Γ_cache for the batch claim.
    ShrinkCache {
        /// Entries before the shrink.
        from_entries: usize,
        /// Entries after the shrink.
        to_entries: usize,
    },
    /// Split each batch's transient claim across this many
    /// micro-steps (extra kernel launches are charged).
    MicroBatch {
        /// Current division factor.
        factor: usize,
    },
    /// Halved the sampling fanouts (min 1) to shrink mini-batches.
    ReduceFanout {
        /// The fanouts now in effect.
        fanouts: Vec<usize>,
    },
}

impl DegradationStep {
    /// Stable action label for journal events.
    pub fn label(&self) -> &'static str {
        match self {
            DegradationStep::ShrinkCache { .. } => "shrink_cache",
            DegradationStep::MicroBatch { .. } => "micro_batch",
            DegradationStep::ReduceFanout { .. } => "reduce_fanout",
        }
    }
}

/// What the run had to absorb and how it recovered — part of every
/// [`ExecutionReport`]; all-zero on a clean run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryLog {
    /// Faults the plan injected into this run.
    pub faults_injected: u64,
    /// Bounded retries performed (sampling + memory claims).
    pub retries: u32,
    /// Degradation-ladder steps taken, in order.
    pub degradations: Vec<DegradationStep>,
    /// Training steps skipped by the NaN guard.
    pub nan_steps_skipped: u32,
    /// Learning-rate halvings spent by the NaN guard.
    pub lr_halvings: u32,
    /// Simulated time charged to backoff pauses and ladder work.
    pub recovery_sim: SimTime,
}

impl RecoveryLog {
    /// True when the run needed no recovery at all.
    pub fn is_clean(&self) -> bool {
        self.faults_injected == 0
            && self.retries == 0
            && self.degradations.is_empty()
            && self.nan_steps_skipped == 0
    }
}

/// Full result of a backend execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// The measured performance triple and diagnostics.
    pub perf: Perf,
    /// Per-training-step loss history.
    pub loss_history: Vec<f32>,
    /// The configuration that produced this report.
    pub config: TrainingConfig,
    /// Faults absorbed and recovery actions taken.
    pub recovery: RecoveryLog,
}

/// The reconfigurable backend bound to one hardware platform.
///
/// # Example
///
/// A timing-only run on a small synthetic slice of Reddit2 (runs in a
/// doctest):
///
/// ```
/// use gnnav_runtime::{ExecutionOptions, RuntimeBackend, TrainingConfig};
/// use gnnav_graph::{Dataset, DatasetId};
/// use gnnav_hwsim::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01)?;
/// let backend = RuntimeBackend::new(Platform::default_rtx4090());
/// let report = backend.execute(&dataset, &TrainingConfig::default(),
///                              &ExecutionOptions::timing_only())?;
/// assert!(report.perf.epoch_time.as_secs() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeBackend {
    platform: Platform,
}

impl RuntimeBackend {
    /// Creates a backend on `platform`.
    pub fn new(platform: Platform) -> Self {
        RuntimeBackend { platform }
    }

    /// The bound platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Executes training of `dataset` under `config`, returning the
    /// measured performance.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for inconsistent
    /// configurations, [`RuntimeError::Hw`] if the device runs out of
    /// memory, or [`RuntimeError::Graph`] on sampling failures.
    pub fn execute(
        &self,
        dataset: &Dataset,
        config: &TrainingConfig,
        opts: &ExecutionOptions,
    ) -> Result<ExecutionReport, RuntimeError> {
        let mut session = ExecutionSession::new(self.platform.clone(), dataset, config, opts)?;
        for _ in 0..opts.epochs {
            session.run_epoch()?;
        }
        session.finish()
    }

    /// Opens a resumable [`ExecutionSession`] on this backend's
    /// platform — the epoch-at-a-time form of
    /// [`execute`](Self::execute) used by adaptive training.
    ///
    /// # Errors
    ///
    /// Same validation errors as [`execute`](Self::execute).
    pub fn open_session<'d>(
        &self,
        dataset: &'d Dataset,
        config: &TrainingConfig,
        opts: &ExecutionOptions,
    ) -> Result<ExecutionSession<'d>, RuntimeError> {
        ExecutionSession::new(self.platform.clone(), dataset, config, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_cache::CachePolicy;
    use gnnav_graph::DatasetId;

    fn tiny_dataset() -> Dataset {
        Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load")
    }

    fn small_config() -> TrainingConfig {
        TrainingConfig {
            batch_size: 64,
            fanouts: vec![5, 5],
            hidden_dim: 16,
            ..TrainingConfig::default()
        }
    }

    fn fast_opts() -> ExecutionOptions {
        ExecutionOptions { epochs: 1, train_batches_cap: Some(2), ..Default::default() }
    }

    #[test]
    fn execute_produces_consistent_report() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let r = backend.execute(&d, &small_config(), &fast_opts()).expect("run");
        assert!(r.perf.epoch_time.as_secs() > 0.0);
        assert!(r.perf.peak_mem_bytes > 0);
        assert!(r.perf.n_iter >= 1);
        assert!(r.perf.avg_batch_nodes >= 64.0);
        assert!(!r.loss_history.is_empty());
        assert!(r.perf.accuracy >= 0.0 && r.perf.accuracy <= 1.0);
    }

    #[test]
    fn timing_only_skips_training() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let r =
            backend.execute(&d, &small_config(), &ExecutionOptions::timing_only()).expect("run");
        assert!(r.loss_history.is_empty());
        assert_eq!(r.perf.accuracy, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let a = backend.execute(&d, &small_config(), &fast_opts()).expect("run");
        let b = backend.execute(&d, &small_config(), &fast_opts()).expect("run");
        // The whole triple (and every diagnostic) must reproduce
        // bit-for-bit, not just the headline numbers.
        assert_eq!(a.perf, b.perf);
        assert_eq!(a.loss_history, b.loss_history);
    }

    #[test]
    fn zero_batches_yield_finite_zero_averages() {
        // An empty train split runs zero mini-batches; the batch
        // averages must come out 0.0, not NaN from a 0/0.
        let base = tiny_dataset();
        let test = base.split().test.clone();
        let d = base
            .with_split(gnnav_graph::Split { train: Vec::new(), val: Vec::new(), test })
            .expect("split");
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let r =
            backend.execute(&d, &small_config(), &ExecutionOptions::timing_only()).expect("run");
        assert_eq!(r.perf.avg_batch_nodes, 0.0);
        assert_eq!(r.perf.avg_batch_edges, 0.0);
        assert_eq!(r.perf.n_iter, 0);
        assert!(r.loss_history.is_empty());
    }

    #[test]
    fn cache_reduces_transfer_time() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let mut no_cache = small_config();
        no_cache.cache_policy = CachePolicy::None;
        no_cache.cache_ratio = 0.0;
        let mut cached = small_config();
        cached.cache_policy = CachePolicy::StaticDegree;
        cached.cache_ratio = 0.5;
        let opts = ExecutionOptions::timing_only();
        let r0 = backend.execute(&d, &no_cache, &opts).expect("run");
        let r1 = backend.execute(&d, &cached, &opts).expect("run");
        assert_eq!(r0.perf.hit_rate, 0.0);
        assert!(r1.perf.hit_rate > 0.3, "hit rate {}", r1.perf.hit_rate);
        assert!(r1.perf.phases.transfer < r0.perf.phases.transfer);
        // But the cache costs memory.
        assert!(r1.perf.peak_mem_bytes > r0.perf.peak_mem_bytes);
    }

    #[test]
    fn pipelining_reduces_epoch_time() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let mut serial = small_config();
        serial.pipelined = false;
        let mut piped = small_config();
        piped.pipelined = true;
        let opts = ExecutionOptions::timing_only();
        let rs = backend.execute(&d, &serial, &opts).expect("run");
        let rp = backend.execute(&d, &piped, &opts).expect("run");
        assert!(rp.perf.epoch_time < rs.perf.epoch_time);
    }

    #[test]
    fn oom_reported_on_tiny_device() {
        use gnnav_hwsim::DeviceProfile;
        let d = tiny_dataset();
        let mut platform = Platform::default_rtx4090();
        platform.device = DeviceProfile {
            mem_capacity_bytes: 1000, // absurdly small
            ..platform.device
        };
        let backend = RuntimeBackend::new(platform);
        let err =
            backend.execute(&d, &small_config(), &ExecutionOptions::timing_only()).unwrap_err();
        assert!(matches!(err, RuntimeError::Hw(_)));
    }

    #[test]
    fn zero_epochs_rejected() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let opts = ExecutionOptions { epochs: 0, ..Default::default() };
        assert!(matches!(
            backend.execute(&d, &small_config(), &opts),
            Err(RuntimeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn training_actually_learns_on_products() {
        // PR is the easy dataset: even a short run beats the 1/47
        // random-guess floor by a wide margin.
        let d = Dataset::load_scaled(DatasetId::OgbnProducts, 0.02).expect("load");
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let opts = ExecutionOptions { epochs: 4, ..Default::default() };
        let r = backend.execute(&d, &small_config(), &opts).expect("run");
        assert!(r.perf.accuracy > 0.3, "accuracy {}", r.perf.accuracy);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use gnnav_faults::{FaultKind, FaultPlan, FaultSpec};
    use gnnav_graph::DatasetId;

    fn tiny_dataset() -> Dataset {
        Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load")
    }

    fn small_config() -> TrainingConfig {
        TrainingConfig {
            batch_size: 64,
            fanouts: vec![5, 5],
            hidden_dim: 16,
            ..TrainingConfig::default()
        }
    }

    fn opts_with(plan: FaultPlan) -> ExecutionOptions {
        ExecutionOptions {
            epochs: 1,
            train_batches_cap: Some(4),
            fault_plan: Some(plan),
            ..Default::default()
        }
    }

    #[test]
    fn transient_oom_survived_with_retries() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        // A huge spike on the first two batches that clears on the
        // third attempt — within the default retry budget.
        let plan = FaultPlan::new(11).with_fault(
            FaultSpec::new(FaultKind::TransientOom)
                .with_magnitude(1e12)
                .with_window(0, 2)
                .with_duration_attempts(2),
        );
        let r = backend.execute(&d, &small_config(), &opts_with(plan)).expect("survive");
        assert_eq!(r.recovery.retries, 4, "2 faulty batches x 2 failed attempts");
        assert!(r.recovery.faults_injected >= 4);
        assert!(r.recovery.degradations.is_empty());
        assert!(r.recovery.recovery_sim > SimTime::ZERO);
        assert!(!r.recovery.is_clean());
        assert!(r.perf.epoch_time.as_secs() > 0.0);
    }

    #[test]
    fn transient_oom_persistent_exhausts_ladder_with_typed_error() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        // Persistent astronomically-large spike: retries, every ladder
        // rung, and fanout reduction all fail — the error must be
        // typed, never a panic.
        let plan = FaultPlan::new(12)
            .with_fault(FaultSpec::new(FaultKind::TransientOom).with_magnitude(1e15));
        let err = backend.execute(&d, &small_config(), &opts_with(plan)).unwrap_err();
        assert!(
            matches!(err, RuntimeError::RetriesExhausted { .. }),
            "expected RetriesExhausted, got {err}"
        );
        assert!(err.to_string().contains("degradation ladder exhausted"));
    }

    #[test]
    fn degradation_ladder_absorbs_real_memory_pressure() {
        use gnnav_hwsim::DeviceProfile;
        let d = tiny_dataset();
        let config = small_config();
        let opts = ExecutionOptions { epochs: 1, train_batches_cap: Some(2), ..Default::default() };

        // Measure the clean peak, then rerun on a device that cannot
        // quite hold it: the ladder must shrink the cache instead of
        // aborting.
        let clean = RuntimeBackend::new(Platform::default_rtx4090())
            .execute(&d, &config, &opts)
            .expect("clean run");
        let mut platform = Platform::default_rtx4090();
        platform.device =
            DeviceProfile { mem_capacity_bytes: clean.perf.peak_mem_bytes - 1, ..platform.device };
        let r = RuntimeBackend::new(platform).execute(&d, &config, &opts).expect("degraded run");
        assert!(
            r.recovery
                .degradations
                .iter()
                .any(|s| matches!(s, DegradationStep::ShrinkCache { .. })),
            "expected a cache shrink, got {:?}",
            r.recovery.degradations
        );
        assert_eq!(r.recovery.faults_injected, 0, "no injection involved");
        assert!(r.perf.peak_mem_bytes < clean.perf.peak_mem_bytes);
        // Degradation costs simulated time.
        assert!(r.recovery.recovery_sim > SimTime::ZERO);
    }

    #[test]
    fn sampler_failure_survived_then_exhausted() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let transient = FaultPlan::new(13).with_fault(
            FaultSpec::new(FaultKind::SamplerFailure).with_window(0, 3).with_duration_attempts(2),
        );
        let r = backend.execute(&d, &small_config(), &opts_with(transient)).expect("survive");
        assert_eq!(r.recovery.retries, 6, "3 faulty batches x 2 failed attempts");

        let persistent = FaultPlan::new(13).with_fault(FaultSpec::new(FaultKind::SamplerFailure));
        let err = backend.execute(&d, &small_config(), &opts_with(persistent)).unwrap_err();
        match err {
            RuntimeError::RetriesExhausted { what, attempts, .. } => {
                assert!(what.contains("sampling"), "what: {what}");
                assert_eq!(attempts, 4, "initial attempt + 3 retries");
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn link_degrade_stretches_transfer_and_stall_errors_out() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let opts = |plan| ExecutionOptions { train: false, ..opts_with(plan) };

        let clean = backend
            .execute(
                &d,
                &small_config(),
                &ExecutionOptions { train: false, ..opts_with(FaultPlan::new(0)) },
            )
            .expect("clean");
        let slow = FaultPlan::new(14)
            .with_fault(FaultSpec::new(FaultKind::LinkDegrade).with_magnitude(50.0));
        let r = backend.execute(&d, &small_config(), &opts(slow)).expect("degraded");
        assert!(
            r.perf.phases.transfer > clean.perf.phases.transfer * 10.0,
            "50x link degradation must dominate transfer time ({} vs {})",
            r.perf.phases.transfer,
            clean.perf.phases.transfer
        );

        // A persistent stall exhausts its retries.
        let stalled = FaultPlan::new(14)
            .with_fault(FaultSpec::new(FaultKind::LinkDegrade).with_magnitude(LINK_STALL_FACTOR));
        let err = backend.execute(&d, &small_config(), &opts(stalled)).unwrap_err();
        assert!(err.to_string().contains("stalled link"), "got {err}");

        // A transient stall (clears within the retry budget) survives.
        let blip = FaultPlan::new(14).with_fault(
            FaultSpec::new(FaultKind::LinkDegrade)
                .with_magnitude(LINK_STALL_FACTOR)
                .with_duration_attempts(1),
        );
        let r = backend.execute(&d, &small_config(), &opts(blip)).expect("blip survived");
        assert!(r.recovery.retries > 0);
    }

    #[test]
    fn nan_guard_skips_steps_and_halves_lr() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let plan =
            FaultPlan::new(15).with_fault(FaultSpec::new(FaultKind::NanLoss).with_window(0, 3));
        let clean =
            backend.execute(&d, &small_config(), &opts_with(FaultPlan::new(15))).expect("clean");
        let r = backend.execute(&d, &small_config(), &opts_with(plan)).expect("guarded");
        assert_eq!(r.recovery.nan_steps_skipped, 3);
        assert_eq!(r.recovery.lr_halvings, 3);
        assert_eq!(r.loss_history.len() + 3, clean.loss_history.len());
        assert!(r.loss_history.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn nan_guard_exhaustion_is_typed_error() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let plan = FaultPlan::new(16).with_fault(FaultSpec::new(FaultKind::NanLoss));
        let opts = ExecutionOptions {
            recovery: RecoveryPolicy { max_lr_halvings: 1, ..Default::default() },
            ..opts_with(plan)
        };
        let err = backend.execute(&d, &small_config(), &opts).unwrap_err();
        match err {
            RuntimeError::RetriesExhausted { what, .. } => {
                assert!(what.contains("NaN"), "what: {what}")
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn nan_guard_off_keeps_old_behavior() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let plan =
            FaultPlan::new(17).with_fault(FaultSpec::new(FaultKind::NanLoss).with_window(0, 1));
        let opts = ExecutionOptions {
            recovery: RecoveryPolicy { nan_guard: false, ..Default::default() },
            ..opts_with(plan)
        };
        let r = backend.execute(&d, &small_config(), &opts).expect("no guard, no error");
        assert!(r.loss_history.iter().any(|l| l.is_nan()), "NaN recorded verbatim");
        assert_eq!(r.recovery.nan_steps_skipped, 0);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let plan = FaultPlan::new(18)
            .with_fault(
                FaultSpec::new(FaultKind::TransientOom)
                    .with_probability(0.5)
                    .with_magnitude(1e12)
                    .with_duration_attempts(1),
            )
            .with_fault(FaultSpec::new(FaultKind::NanLoss).with_probability(0.5))
            .with_fault(
                FaultSpec::new(FaultKind::LinkDegrade).with_probability(0.5).with_magnitude(3.0),
            );
        let a = backend.execute(&d, &small_config(), &opts_with(plan.clone())).expect("a");
        let b = backend.execute(&d, &small_config(), &opts_with(plan)).expect("b");
        assert_eq!(a.perf, b.perf);
        assert_eq!(a.loss_history, b.loss_history);
        assert_eq!(a.recovery, b.recovery);
        assert!(!a.recovery.is_clean(), "plan at p=0.5 should have fired somewhere");
    }

    #[test]
    fn invalid_plan_and_policy_rejected_as_config_errors() {
        let d = tiny_dataset();
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let bad_plan =
            FaultPlan::new(0).with_fault(FaultSpec::new(FaultKind::NanLoss).with_probability(2.0));
        assert!(matches!(
            backend.execute(&d, &small_config(), &opts_with(bad_plan)),
            Err(RuntimeError::InvalidConfig(_))
        ));
        let bad_policy = ExecutionOptions {
            recovery: RecoveryPolicy { backoff_base_ms: f64::NAN, ..Default::default() },
            ..ExecutionOptions::timing_only()
        };
        assert!(matches!(
            backend.execute(&d, &small_config(), &bad_policy),
            Err(RuntimeError::InvalidConfig(_))
        ));
    }
}

#[cfg(test)]
mod overhead_tests {
    use super::*;
    use crate::config::TrainingConfig;
    use gnnav_graph::DatasetId;

    /// With per-iteration overhead, halving the batch size (doubling
    /// n_iter) must NOT halve epoch time — the fixed cost per
    /// iteration caps the benefit of giant batches (and the cost of
    /// small ones scales with their count).
    #[test]
    fn per_iteration_overhead_limits_batch_scaling() {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
        let backend = RuntimeBackend::new(Platform::default_rtx4090());
        let opts = ExecutionOptions::timing_only();
        let run = |batch: usize| {
            let config = TrainingConfig { batch_size: batch, ..TrainingConfig::default() };
            backend.execute(&dataset, &config, &opts).expect("run").perf
        };
        let small = run(16);
        let large = run(128);
        // 8x fewer iterations must not yield an 8x speedup.
        let speedup = small.epoch_time.as_secs() / large.epoch_time.as_secs();
        assert!(speedup < 8.0, "batch scaling speedup {speedup} unexpectedly ideal");
        assert!(speedup > 1.0, "larger batches should still help somewhat");
    }
}
