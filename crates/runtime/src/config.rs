//! Training configuration — the design point of the DSE.
//!
//! Every reconfigurable setting of the backend (the blue dashed boxes
//! of the paper's Fig. 3) lives in [`TrainingConfig`]. A configuration
//! fully determines a training run on a given dataset and platform;
//! the explorer searches over these.

use gnnav_cache::CachePolicy;
use gnnav_graph::{stats::nodes_by_degree_desc, Graph, NodeId};
use gnnav_hwsim::Precision;
use gnnav_nn::ModelKind;
use gnnav_sampler::{
    LayerWiseSampler, LocalityBias, NodeWiseSampler, Sampler, SubgraphWiseSampler,
};

use crate::RuntimeError;

/// Which sampler family the backend instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum SamplerKind {
    /// Node-wise fanout sampling (GraphSAGE style).
    NodeWise,
    /// Layer-wise budgeted sampling (FastGCN style).
    LayerWise,
    /// Subgraph-wise random walks (GraphSAINT style).
    SubgraphWise,
}

impl SamplerKind {
    /// All sampler kinds.
    pub const ALL: [SamplerKind; 3] =
        [SamplerKind::NodeWise, SamplerKind::LayerWise, SamplerKind::SubgraphWise];
}

impl std::fmt::Display for SamplerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SamplerKind::NodeWise => "node-wise",
            SamplerKind::LayerWise => "layer-wise",
            SamplerKind::SubgraphWise => "subgraph-wise",
        })
    }
}

/// A complete training configuration (one candidate in the design
/// space).
///
/// # Example
///
/// ```
/// use gnnav_runtime::TrainingConfig;
///
/// let config = TrainingConfig::default();
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingConfig {
    /// Sampler family.
    pub sampler: SamplerKind,
    /// Per-layer fanouts `k^l` (also parameterizes the other sampler
    /// families; see [`TrainingConfig::build_sampler`]).
    pub fanouts: Vec<usize>,
    /// Locality-bias strength `η ∈ [0, 1]` of `p(η)` in Eq. 2
    /// (0 = unbiased; 2PGraph uses a high value).
    pub locality_eta: f64,
    /// Target vertices per mini-batch `|B^0|`.
    pub batch_size: usize,
    /// Cache ratio `r`: fraction of `|V|` whose feature rows the
    /// device cache may hold.
    pub cache_ratio: f64,
    /// Cache replacement policy.
    pub cache_policy: CachePolicy,
    /// Whether dynamic caches keep updating after they fill (when
    /// `false`, a dynamic cache fills once and then freezes —
    /// "disable cache update policy" in Fig. 3).
    pub cache_update: bool,
    /// Whether host work (sample + transfer) overlaps device work
    /// (replace + compute) — the `max` vs. sum of Eq. 4.
    pub pipelined: bool,
    /// Compute/transfer precision.
    pub precision: Precision,
    /// GNN architecture.
    pub model: ModelKind,
    /// Hidden width of the GNN.
    pub hidden_dim: usize,
    /// Dropout probability on hidden activations (a model-design
    /// optimization; `0.0` disables it).
    pub dropout: f64,
}

impl Default for TrainingConfig {
    /// A sensible mid-range configuration (node-wise `[10, 10]`,
    /// batch 1024, LRU cache at `r = 0.1`, pipelined, FP32 SAGE-64).
    fn default() -> Self {
        TrainingConfig {
            sampler: SamplerKind::NodeWise,
            fanouts: vec![10, 10],
            locality_eta: 0.0,
            batch_size: 1024,
            cache_ratio: 0.1,
            cache_policy: CachePolicy::Lru,
            cache_update: true,
            pipelined: true,
            precision: Precision::Fp32,
            model: ModelKind::Sage,
            hidden_dim: 64,
            dropout: 0.0,
        }
    }
}

impl TrainingConfig {
    /// Number of GNN layers implied by the sampling depth.
    pub fn num_layers(&self) -> usize {
        self.fanouts.len()
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] describing the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        if self.fanouts.is_empty() || self.fanouts.contains(&0) {
            return Err(RuntimeError::InvalidConfig(
                "fanouts must be non-empty and positive".into(),
            ));
        }
        if self.batch_size == 0 {
            return Err(RuntimeError::InvalidConfig("batch_size must be > 0".into()));
        }
        if !(0.0..=1.0).contains(&self.cache_ratio) {
            return Err(RuntimeError::InvalidConfig(format!(
                "cache_ratio {} outside [0, 1]",
                self.cache_ratio
            )));
        }
        if !(0.0..=1.0).contains(&self.locality_eta) {
            return Err(RuntimeError::InvalidConfig(format!(
                "locality_eta {} outside [0, 1]",
                self.locality_eta
            )));
        }
        if self.hidden_dim == 0 {
            return Err(RuntimeError::InvalidConfig("hidden_dim must be > 0".into()));
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(RuntimeError::InvalidConfig(format!(
                "dropout {} outside [0, 1)",
                self.dropout
            )));
        }
        if self.cache_policy == CachePolicy::None && self.cache_ratio > 0.0 {
            return Err(RuntimeError::InvalidConfig(
                "cache_ratio must be 0 when cache_policy is none".into(),
            ));
        }
        Ok(())
    }

    /// Number of cache entries on a graph of `num_nodes` nodes.
    pub fn cache_entries(&self, num_nodes: usize) -> usize {
        (self.cache_ratio * num_nodes as f64).round() as usize
    }

    /// The hot node set used by the locality bias: the top `r·|V|`
    /// nodes by degree (what a degree-ordered cache would hold), or
    /// the top 10% when no cache is configured.
    pub fn hot_set(&self, graph: &Graph) -> Vec<NodeId> {
        let count = if self.cache_ratio > 0.0 {
            self.cache_entries(graph.num_nodes())
        } else {
            graph.num_nodes() / 10
        };
        nodes_by_degree_desc(graph).into_iter().take(count).collect()
    }

    /// Instantiates the configured sampler for `graph`.
    ///
    /// Fanouts parameterize every family: layer-wise budgets are
    /// `Δ^l = k^l · |B^0| / 4` (Eq. 3's shared-neighbor discount) and
    /// subgraph-wise walks take `Σ k^l` hops.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if validation fails.
    pub fn build_sampler(&self, graph: &Graph) -> Result<Box<dyn Sampler>, RuntimeError> {
        self.validate()?;
        let bias = if self.locality_eta > 0.0 {
            LocalityBias::new(graph.num_nodes(), &self.hot_set(graph), self.locality_eta)
        } else {
            LocalityBias::none(graph.num_nodes())
        };
        Ok(match self.sampler {
            SamplerKind::NodeWise => Box::new(NodeWiseSampler::new(self.fanouts.clone(), bias)),
            SamplerKind::LayerWise => {
                let sizes: Vec<usize> =
                    self.fanouts.iter().map(|&k| (k * self.batch_size / 4).max(16)).collect();
                Box::new(LayerWiseSampler::new(sizes, bias))
            }
            SamplerKind::SubgraphWise => {
                let hops: usize = self.fanouts.iter().sum();
                Box::new(SubgraphWiseSampler::new(hops.max(1), bias))
            }
        })
    }

    /// A short one-line summary for tables and logs.
    pub fn summary(&self) -> String {
        format!(
            "{} f{:?} eta{:.2} b{} {} r{:.2}{} {} {} h{} d{:.1}",
            self.sampler,
            self.fanouts,
            self.locality_eta,
            self.batch_size,
            self.cache_policy,
            self.cache_ratio,
            if self.cache_update { "" } else { " frozen" },
            if self.pipelined { "pipelined" } else { "serial" },
            self.precision,
            self.hidden_dim,
            self.dropout,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_graph::generators::barabasi_albert;

    #[test]
    fn default_validates() {
        TrainingConfig::default().validate().expect("default config valid");
    }

    #[test]
    fn validation_catches_bad_fields() {
        let cases = [
            TrainingConfig { batch_size: 0, ..TrainingConfig::default() },
            TrainingConfig { cache_ratio: 1.5, ..TrainingConfig::default() },
            TrainingConfig { fanouts: vec![], ..TrainingConfig::default() },
            TrainingConfig { locality_eta: -0.1, ..TrainingConfig::default() },
            TrainingConfig {
                cache_policy: CachePolicy::None,
                cache_ratio: 0.3,
                ..TrainingConfig::default()
            },
            TrainingConfig { dropout: 1.0, ..TrainingConfig::default() },
        ];
        for c in cases {
            assert!(c.validate().is_err(), "{}", c.summary());
        }
    }

    #[test]
    fn cache_entries_rounding() {
        let mut c = TrainingConfig { cache_ratio: 0.25, ..TrainingConfig::default() };
        assert_eq!(c.cache_entries(1000), 250);
        c.cache_ratio = 0.0;
        assert_eq!(c.cache_entries(1000), 0);
    }

    #[test]
    fn hot_set_is_high_degree() {
        let g = barabasi_albert(500, 3, 1).expect("gen");
        let c = TrainingConfig { cache_ratio: 0.1, ..TrainingConfig::default() };
        let hot = c.hot_set(&g);
        assert_eq!(hot.len(), 50);
        let min_hot_deg = hot.iter().map(|&v| g.degree(v)).min().expect("non-empty");
        assert!(min_hot_deg as f64 >= g.avg_degree());
    }

    #[test]
    fn build_sampler_each_kind() {
        let g = barabasi_albert(300, 3, 2).expect("gen");
        for kind in SamplerKind::ALL {
            let c = TrainingConfig { sampler: kind, ..TrainingConfig::default() };
            let s = c.build_sampler(&g).expect("build");
            assert!(s.num_layers() >= 1, "{kind}");
        }
    }

    #[test]
    fn num_layers_follows_fanouts() {
        let c = TrainingConfig { fanouts: vec![5, 5, 5], ..TrainingConfig::default() };
        assert_eq!(c.num_layers(), 3);
    }

    #[test]
    fn summary_mentions_key_fields() {
        let s = TrainingConfig::default().summary();
        assert!(s.contains("node-wise"));
        assert!(s.contains("b1024"));
        assert!(s.contains("lru"));
    }

    #[test]
    fn display_names() {
        assert_eq!(SamplerKind::LayerWise.to_string(), "layer-wise");
    }
}
