//! Training performance results `Perf{T, Γ, Acc}`.

use gnnav_hwsim::SimTime;

/// Per-phase simulated time totals over one epoch (the four phase
/// times of the paper's Eq. 4).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// Host-side sampling.
    pub sample: SimTime,
    /// Host→device feature transfer.
    pub transfer: SimTime,
    /// Device cache replacement.
    pub replace: SimTime,
    /// Device aggregate+combine compute.
    pub compute: SimTime,
}

impl PhaseBreakdown {
    /// Sum of all phases (the serialized epoch time).
    pub fn total(&self) -> SimTime {
        self.sample + self.transfer + self.replace + self.compute
    }
}

/// The performance triple the paper optimizes, plus the diagnostics
/// the estimator learns from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perf {
    /// Average simulated epoch time `T`.
    pub epoch_time: SimTime,
    /// Peak device memory `Γ` in bytes.
    pub peak_mem_bytes: usize,
    /// Final test accuracy `Acc` in `[0, 1]` (0 when training was
    /// skipped).
    pub accuracy: f64,
    /// Cumulative cache hit rate.
    pub hit_rate: f64,
    /// Mean mini-batch size `E(|V_i|)`.
    pub avg_batch_nodes: f64,
    /// Mean mini-batch edge count.
    pub avg_batch_edges: f64,
    /// Iterations per epoch `n_iter`.
    pub n_iter: usize,
    /// Per-phase breakdown (per-epoch totals).
    pub phases: PhaseBreakdown,
}

impl Perf {
    /// Speedup of `self` relative to `baseline` (>1 means faster).
    ///
    /// Two zero-time runs are equally fast (1.0); only a zero-time
    /// `self` against a non-zero baseline is infinitely faster.
    pub fn speedup_vs(&self, baseline: &Perf) -> f64 {
        let own = self.epoch_time.as_secs();
        let base = baseline.epoch_time.as_secs();
        if own == 0.0 {
            if base == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            base / own
        }
    }

    /// Relative memory change vs `baseline`: positive = more memory,
    /// negative = savings (the ±% column of the paper's Tab. 1).
    pub fn mem_delta_vs(&self, baseline: &Perf) -> f64 {
        if baseline.peak_mem_bytes == 0 {
            0.0
        } else {
            self.peak_mem_bytes as f64 / baseline.peak_mem_bytes as f64 - 1.0
        }
    }

    /// Peak memory in megabytes.
    pub fn peak_mem_mb(&self) -> f64 {
        self.peak_mem_bytes as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf(secs: f64, mem: usize) -> Perf {
        Perf {
            epoch_time: SimTime::from_secs(secs),
            peak_mem_bytes: mem,
            accuracy: 0.9,
            hit_rate: 0.5,
            avg_batch_nodes: 100.0,
            avg_batch_edges: 400.0,
            n_iter: 10,
            phases: PhaseBreakdown::default(),
        }
    }

    #[test]
    fn speedup_and_mem_delta() {
        let base = perf(2.0, 1000);
        let fast = perf(1.0, 1300);
        assert!((fast.speedup_vs(&base) - 2.0).abs() < 1e-12);
        assert!((fast.mem_delta_vs(&base) - 0.3).abs() < 1e-12);
        let lean = perf(2.0, 700);
        assert!((lean.mem_delta_vs(&base) + 0.3).abs() < 1e-12);
    }

    #[test]
    fn speedup_zero_time_edge_cases() {
        let zero = perf(0.0, 1000);
        let nonzero = perf(2.0, 1000);
        // 0/0: equally (not infinitely) fast.
        assert_eq!(zero.speedup_vs(&zero), 1.0);
        // Zero own time against a real baseline: unbounded speedup.
        assert_eq!(zero.speedup_vs(&nonzero), f64::INFINITY);
        // Real own time against a zero baseline: speedup collapses to 0.
        assert_eq!(nonzero.speedup_vs(&zero), 0.0);
    }

    #[test]
    fn mem_delta_zero_baseline_is_neutral() {
        let base = perf(1.0, 0);
        assert_eq!(perf(1.0, 500).mem_delta_vs(&base), 0.0);
    }

    #[test]
    fn phase_total_sums() {
        let p = PhaseBreakdown {
            sample: SimTime::from_secs(1.0),
            transfer: SimTime::from_secs(2.0),
            replace: SimTime::from_secs(0.5),
            compute: SimTime::from_secs(1.5),
        };
        assert!((p.total().as_secs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mem_mb_conversion() {
        assert!((perf(1.0, 2_500_000).peak_mem_mb() - 2.5).abs() < 1e-12);
    }
}
