//! Minimal binary codec for durable payloads.
//!
//! All integers are little-endian. Floats are stored as raw IEEE-754
//! bits (`to_bits`/`from_bits`), so round-tripping is byte-exact —
//! the checkpoint/resume determinism guarantee depends on it.

use crate::StoreError;

/// Appends primitive values to a growing byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f32` as raw bits.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Writes an `f64` as raw bits.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Writes a length-prefixed `f32` slice.
    pub fn put_f32_slice(&mut self, v: &[f32]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f32(x);
        }
    }

    /// Writes a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_u32(x);
        }
    }

    /// Writes a length-prefixed `usize` slice.
    pub fn put_usize_slice(&mut self, v: &[usize]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_usize(x);
        }
    }

    /// Writes raw bytes without a length prefix.
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Reads primitive values back out of an encoded buffer, surfacing a
/// typed [`StoreError::Decode`] on truncation instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::decode(format!(
                "truncated payload: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool, rejecting anything but 0/1.
    pub fn get_bool(&mut self) -> Result<bool, StoreError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(StoreError::decode(format!("invalid bool byte {v}"))),
        }
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a `usize` stored as `u64`.
    pub fn get_usize(&mut self) -> Result<usize, StoreError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| StoreError::decode(format!("usize overflow: {v}")))
    }

    /// Reads an `f32` from raw bits.
    pub fn get_f32(&mut self) -> Result<f32, StoreError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads an `f64` from raw bits.
    pub fn get_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StoreError> {
        let n = self.get_usize()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| StoreError::decode(format!("invalid utf-8 string: {e}")))
    }

    /// Reads a length-prefixed `f32` vector.
    pub fn get_f32_vec(&mut self) -> Result<Vec<f32>, StoreError> {
        let n = self.get_usize()?;
        let mut v = Vec::with_capacity(n.min(self.remaining() / 4 + 1));
        for _ in 0..n {
            v.push(self.get_f32()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, StoreError> {
        let n = self.get_usize()?;
        let mut v = Vec::with_capacity(n.min(self.remaining() / 4 + 1));
        for _ in 0..n {
            v.push(self.get_u32()?);
        }
        Ok(v)
    }

    /// Reads `n` raw bytes (no length prefix) — the counterpart of
    /// [`ByteWriter::put_raw`] for embedding nested payloads.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        self.take(n)
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn get_usize_vec(&mut self) -> Result<Vec<usize>, StoreError> {
        let n = self.get_usize()?;
        let mut v = Vec::with_capacity(n.min(self.remaining() / 8 + 1));
        for _ in 0..n {
            v.push(self.get_usize()?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f32(-0.0);
        w.put_f64(f64::MIN_POSITIVE);
        w.put_str("hëllo");
        w.put_f32_slice(&[1.5, -2.25]);
        w.put_usize_slice(&[10, 10]);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.get_f64().unwrap(), f64::MIN_POSITIVE);
        assert_eq!(r.get_str().unwrap(), "hëllo");
        assert_eq!(r.get_f32_vec().unwrap(), vec![1.5, -2.25]);
        assert_eq!(r.get_usize_vec().unwrap(), vec![10, 10]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn nan_bits_survive() {
        // A NaN payload must round-trip bit-exactly, not collapse to a
        // canonical NaN.
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = ByteWriter::new();
        w.put_f64(weird);
        let bytes = w.finish();
        assert_eq!(ByteReader::new(&bytes).get_f64().unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn truncation_is_typed_not_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        let err = r.get_u64().unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn bad_bool_rejected() {
        assert!(ByteReader::new(&[9]).get_bool().is_err());
    }
}
