//! Write-ahead log segments: versioned, CRC-framed, torn-tail
//! tolerant.
//!
//! # Byte layout (format v1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"GNVW"
//! 4       4     format version (u32 LE, currently 1)
//! 8       ...   records, back to back:
//!               u32 LE  payload length
//!               u32 LE  CRC-32 of payload
//!               [len]   payload bytes
//! ```
//!
//! Writes go through write-temp-then-atomic-rename, so a crash at any
//! instant leaves either the previous segment or the new one — never
//! a half-written file visible under the real name. The recovery scan
//! in [`Wal::open`] tolerates the two corruptions that escape that
//! guarantee on real storage: a *torn tail* (the file ends inside a
//! record frame) is truncated away, and a record whose payload fails
//! its CRC is skipped. Both are loud: metered as
//! `store.wal.torn_truncated` / `store.wal.crc_failures` and
//! journaled on the `store` track.

use crate::crc::crc32;
use crate::StoreError;
use gnnav_obs::names as metric;
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL segment.
pub const WAL_MAGIC: [u8; 4] = *b"GNVW";
/// Format version this build reads and writes.
pub const WAL_FORMAT_VERSION: u32 = 1;
/// Bytes of the segment header (magic + version).
pub const WAL_HEADER_LEN: usize = 8;
/// Bytes of a record frame before its payload (length + CRC).
pub const WAL_FRAME_LEN: usize = 8;

/// What the recovery scan found while opening a segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records replayed intact.
    pub replayed: u64,
    /// Torn tails truncated (0 or 1 per open).
    pub torn_truncated: u64,
    /// Records dropped on checksum failure.
    pub crc_failures: u64,
}

impl RecoveryStats {
    /// Whether the segment was fully intact.
    pub fn is_clean(&self) -> bool {
        self.torn_truncated == 0 && self.crc_failures == 0
    }
}

/// Writes `bytes` to `path` atomically: the content lands in a
/// sibling `.tmp` file first and is renamed over the target, so
/// readers only ever observe a complete file.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| StoreError::io(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| StoreError::io(path, e))
}

/// One append-only segment of CRC-framed records.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    /// Live payloads, in append order.
    records: Vec<Vec<u8>>,
    /// The current on-disk byte image (header + frames).
    image: Vec<u8>,
    recovery: RecoveryStats,
}

impl Wal {
    /// Opens (or creates) the segment at `path`, running the recovery
    /// scan. Torn tails are truncated on disk immediately; CRC-failed
    /// records are dropped from the in-memory view and removed from
    /// disk at the next append or [`Wal::compact`].
    ///
    /// # Errors
    ///
    /// I/O failures, foreign magic, or an unsupported format version.
    pub fn open(path: impl Into<PathBuf>) -> Result<Wal, StoreError> {
        let path = path.into();
        let metrics = gnnav_obs::global();
        let raw = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let mut wal = Wal {
                    path,
                    records: Vec::new(),
                    image: Vec::new(),
                    recovery: RecoveryStats::default(),
                };
                wal.rewrite()?;
                return Ok(wal);
            }
            Err(e) => return Err(StoreError::io(&path, e)),
        };
        if raw.len() < WAL_HEADER_LEN || raw[..4] != WAL_MAGIC {
            return Err(StoreError::BadMagic { path });
        }
        let version = u32::from_le_bytes([raw[4], raw[5], raw[6], raw[7]]);
        if version != WAL_FORMAT_VERSION {
            return Err(StoreError::VersionMismatch {
                path,
                found: version,
                expected: WAL_FORMAT_VERSION,
            });
        }
        let mut records = Vec::new();
        let mut stats = RecoveryStats::default();
        let mut pos = WAL_HEADER_LEN;
        let mut good_end = pos;
        while pos < raw.len() {
            if raw.len() - pos < WAL_FRAME_LEN {
                // The file ends inside a frame header: torn tail.
                stats.torn_truncated += 1;
                break;
            }
            let len =
                u32::from_le_bytes([raw[pos], raw[pos + 1], raw[pos + 2], raw[pos + 3]]) as usize;
            let want = u32::from_le_bytes([raw[pos + 4], raw[pos + 5], raw[pos + 6], raw[pos + 7]]);
            let start = pos + WAL_FRAME_LEN;
            if raw.len() - start < len {
                // The file ends inside this record's payload.
                stats.torn_truncated += 1;
                break;
            }
            let payload = &raw[start..start + len];
            if crc32(payload) == want {
                records.push(payload.to_vec());
                stats.replayed += 1;
            } else {
                stats.crc_failures += 1;
            }
            pos = start + len;
            good_end = pos;
        }
        if metrics.is_enabled() {
            metrics.add(metric::STORE_WAL_REPLAYED, stats.replayed);
            metrics.add(metric::STORE_WAL_TORN_TRUNCATED, stats.torn_truncated);
            metrics.add(metric::STORE_WAL_CRC_FAILURES, stats.crc_failures);
            let journal = metrics.journal();
            if journal.is_enabled() && !stats.is_clean() {
                journal.instant(
                    metric::EVENT_WAL_RECOVERY,
                    metric::TRACK_STORE,
                    None,
                    vec![
                        ("path".into(), path.display().to_string().into()),
                        ("replayed".into(), stats.replayed.into()),
                        ("torn_truncated".into(), stats.torn_truncated.into()),
                        ("crc_failures".into(), stats.crc_failures.into()),
                    ],
                );
            }
        }
        let mut wal = Wal { path, records, image: raw, recovery: stats };
        if stats.torn_truncated > 0 {
            // Drop the torn frame from disk right away so a subsequent
            // crash-free reader sees a clean segment. CRC-failed
            // records keep their disk bytes until the next rewrite —
            // they are already excluded from the in-memory view.
            wal.image.truncate(good_end);
            atomic_write(&wal.path, &wal.image)?;
        }
        Ok(wal)
    }

    /// The segment path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Live record payloads, in append order.
    pub fn records(&self) -> &[Vec<u8>] {
        &self.records
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the segment holds no live records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// What the opening recovery scan found.
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut frame = Vec::with_capacity(WAL_FRAME_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        frame
    }

    /// Rebuilds the on-disk image from the live records and writes it
    /// atomically.
    fn rewrite(&mut self) -> Result<(), StoreError> {
        let mut image =
            Vec::with_capacity(WAL_HEADER_LEN + self.records.iter().map(Vec::len).sum::<usize>());
        image.extend_from_slice(&WAL_MAGIC);
        image.extend_from_slice(&WAL_FORMAT_VERSION.to_le_bytes());
        for r in &self.records {
            image.extend_from_slice(&Wal::frame(r));
        }
        atomic_write(&self.path, &image)?;
        self.image = image;
        Ok(())
    }

    /// Appends one record durably.
    ///
    /// If the opening scan dropped CRC-failed records, the first
    /// append rewrites the whole segment (purging the dead bytes);
    /// otherwise the new frame is appended to the existing image.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the in-memory view is only updated on
    /// success.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        if self.recovery.crc_failures > 0 {
            self.records.push(payload.to_vec());
            self.rewrite()?;
            self.recovery.crc_failures = 0;
        } else {
            let mut image = std::mem::take(&mut self.image);
            image.extend_from_slice(&Wal::frame(payload));
            if let Err(e) = atomic_write(&self.path, &image) {
                // Keep the in-memory image consistent with the last
                // durable on-disk state (minus the unwritten frame).
                image.truncate(image.len() - Wal::frame(payload).len());
                self.image = image;
                return Err(e);
            }
            self.image = image;
            self.records.push(payload.to_vec());
        }
        let metrics = gnnav_obs::global();
        if metrics.is_enabled() {
            metrics.add(metric::STORE_WAL_APPENDS, 1);
        }
        Ok(())
    }

    /// Rewrites the segment keeping only records for which `keep`
    /// returns `true`, compacting away dead bytes. Returns the number
    /// of records dropped.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn compact(
        &mut self,
        mut keep: impl FnMut(usize, &[u8]) -> bool,
    ) -> Result<usize, StoreError> {
        let before = self.records.len();
        let mut idx = 0usize;
        let kept: Vec<Vec<u8>> = self
            .records
            .drain(..)
            .filter(|r| {
                let k = keep(idx, r);
                idx += 1;
                k
            })
            .collect();
        self.records = kept;
        self.rewrite()?;
        self.recovery.crc_failures = 0;
        Ok(before - self.records.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gnnav-store-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn append_and_reopen_round_trips() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("seg.wal");
        let mut wal = Wal::open(&path).expect("open");
        wal.append(b"alpha").expect("append");
        wal.append(b"beta").expect("append");
        drop(wal);
        let wal = Wal::open(&path).expect("reopen");
        assert_eq!(wal.records(), &[b"alpha".to_vec(), b"beta".to_vec()]);
        assert!(wal.recovery().is_clean());
        assert_eq!(wal.recovery().replayed, 2);
    }

    #[test]
    fn torn_tail_truncated_and_survivors_kept() {
        let dir = tmpdir("torn");
        let path = dir.join("seg.wal");
        let mut wal = Wal::open(&path).expect("open");
        wal.append(b"keep-me").expect("append");
        wal.append(b"the-last-record-gets-torn").expect("append");
        drop(wal);
        let len = std::fs::metadata(&path).expect("meta").len();
        // Chop 5 bytes off the final record's payload.
        let f = std::fs::OpenOptions::new().write(true).open(&path).expect("open rw");
        f.set_len(len - 5).expect("truncate");
        drop(f);
        let wal = Wal::open(&path).expect("recover");
        assert_eq!(wal.records(), &[b"keep-me".to_vec()]);
        assert_eq!(wal.recovery().torn_truncated, 1);
        assert_eq!(wal.recovery().replayed, 1);
        // The torn frame is gone from disk: a second open is clean.
        let again = Wal::open(&path).expect("clean reopen");
        assert!(again.recovery().is_clean());
        assert_eq!(again.len(), 1);
    }

    #[test]
    fn bit_flip_drops_exactly_the_damaged_record() {
        let dir = tmpdir("flip");
        let path = dir.join("seg.wal");
        let mut wal = Wal::open(&path).expect("open");
        wal.append(b"first").expect("append");
        wal.append(b"second").expect("append");
        wal.append(b"third").expect("append");
        drop(wal);
        // Flip one bit inside record 1's payload ("second"): it sits
        // after the header (8) + record 0's frame (8 + 5).
        let mut bytes = std::fs::read(&path).expect("read");
        let off = WAL_HEADER_LEN + WAL_FRAME_LEN + 5 + WAL_FRAME_LEN + 2;
        bytes[off] ^= 0x10;
        std::fs::write(&path, &bytes).expect("write corrupted");
        let wal = Wal::open(&path).expect("recover");
        assert_eq!(wal.records(), &[b"first".to_vec(), b"third".to_vec()]);
        assert_eq!(wal.recovery().crc_failures, 1);
        assert_eq!(wal.recovery().replayed, 2);
    }

    #[test]
    fn append_after_crc_failure_purges_dead_bytes() {
        let dir = tmpdir("purge");
        let path = dir.join("seg.wal");
        let mut wal = Wal::open(&path).expect("open");
        wal.append(b"aaaa").expect("append");
        wal.append(b"bbbb").expect("append");
        drop(wal);
        let mut bytes = std::fs::read(&path).expect("read");
        let off = WAL_HEADER_LEN + WAL_FRAME_LEN + 1; // inside "aaaa"
        bytes[off] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write corrupted");
        let mut wal = Wal::open(&path).expect("recover");
        assert_eq!(wal.recovery().crc_failures, 1);
        wal.append(b"cccc").expect("append rewrites");
        drop(wal);
        let wal = Wal::open(&path).expect("reopen");
        assert!(wal.recovery().is_clean(), "dead bytes purged on append");
        assert_eq!(wal.records(), &[b"bbbb".to_vec(), b"cccc".to_vec()]);
    }

    #[test]
    fn compact_keeps_selected_records() {
        let dir = tmpdir("compact");
        let path = dir.join("seg.wal");
        let mut wal = Wal::open(&path).expect("open");
        for i in 0..6u8 {
            wal.append(&[i]).expect("append");
        }
        let dropped = wal.compact(|i, _| i % 2 == 0).expect("compact");
        assert_eq!(dropped, 3);
        drop(wal);
        let wal = Wal::open(&path).expect("reopen");
        assert_eq!(wal.records(), &[vec![0u8], vec![2], vec![4]]);
    }

    #[test]
    fn foreign_file_rejected_with_path() {
        let dir = tmpdir("foreign");
        let path = dir.join("not-a-wal.bin");
        std::fs::write(&path, b"JSON{}!!").expect("write");
        let err = Wal::open(&path).expect_err("bad magic");
        assert!(matches!(err, StoreError::BadMagic { .. }));
        assert!(err.to_string().contains("not-a-wal.bin"));
    }

    #[test]
    fn future_version_rejected() {
        let dir = tmpdir("version");
        let path = dir.join("seg.wal");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");
        let err = Wal::open(&path).expect_err("version");
        assert!(matches!(err, StoreError::VersionMismatch { found: 99, .. }));
    }
}
