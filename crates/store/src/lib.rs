//! Crash-safe persistence for GNNavigator.
//!
//! Everything the pipeline produces is cheap to recompute *once* —
//! and expensive to recompute *every time*. This crate makes the
//! expensive artifacts durable:
//!
//! - [`Wal`] — append-only segments of CRC-framed records (the
//!   on-disk ProfileDb substrate). Recovery truncates torn tails and
//!   skips checksum-failed records, loudly.
//! - [`write_checkpoint`] / [`read_checkpoint`] / [`CheckpointDir`] —
//!   atomic whole-state checkpoint files for the training and
//!   adaptive-navigation resume paths.
//! - [`ByteWriter`] / [`ByteReader`] — the raw-bits binary codec both
//!   formats share (floats as IEEE-754 bits, so resume is byte-exact).
//! - [`corrupt`] — deterministic storage-corruption applicators
//!   backing the `TornWrite`/`BitFlip` fault kinds.
//!
//! All durability traffic is metered (`store.wal.*`,
//! `store.checkpoint.*`) and journaled on the `store` track; see
//! `docs/DURABILITY.md` for the format specs and invariants.

mod checkpoint;
mod codec;
pub mod corrupt;
mod crc;
mod error;
mod wal;

pub use checkpoint::{
    read_checkpoint, write_checkpoint, CheckpointDir, CHECKPOINT_FORMAT_VERSION,
    CHECKPOINT_HEADER_LEN, CHECKPOINT_MAGIC,
};
pub use codec::{ByteReader, ByteWriter};
pub use crc::crc32;
pub use error::StoreError;
pub use wal::{
    atomic_write, RecoveryStats, Wal, WAL_FORMAT_VERSION, WAL_FRAME_LEN, WAL_HEADER_LEN, WAL_MAGIC,
};
