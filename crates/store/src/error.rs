//! Typed storage errors. Every variant that touches the filesystem
//! carries the offending path, so callers can render actionable
//! messages without re-deriving context.

use std::path::PathBuf;

/// Errors from the durability layer.
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level I/O failure at `path`.
    Io {
        /// Path the operation was acting on.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A segment or checkpoint whose header does not carry the
    /// expected magic bytes — the file is not ours (or is damaged
    /// beyond framing).
    BadMagic {
        /// Offending file.
        path: PathBuf,
    },
    /// A segment or checkpoint written by an incompatible format
    /// version.
    VersionMismatch {
        /// Offending file.
        path: PathBuf,
        /// Version found in the header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// A checkpoint whose payload failed its CRC — the file is
    /// rejected as a whole (unlike WAL records, which are skipped
    /// individually).
    ChecksumMismatch {
        /// Offending file.
        path: PathBuf,
    },
    /// A structurally valid payload that does not decode to the
    /// expected shape (e.g. truncated field, unknown enum tag).
    Decode {
        /// Human-readable description of the first violation.
        detail: String,
    },
}

impl StoreError {
    /// Convenience constructor tagging an `io::Error` with its path.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        StoreError::Io { path: path.into(), source }
    }

    /// Convenience constructor for decode failures.
    pub fn decode(detail: impl Into<String>) -> Self {
        StoreError::Decode { detail: detail.into() }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "i/o error on {}: {source}", path.display())
            }
            StoreError::BadMagic { path } => {
                write!(f, "{}: not a gnnav-store file (bad magic)", path.display())
            }
            StoreError::VersionMismatch { path, found, expected } => write!(
                f,
                "{}: format version {found} unsupported (this build reads v{expected})",
                path.display()
            ),
            StoreError::ChecksumMismatch { path } => {
                write!(f, "{}: payload checksum mismatch (file rejected)", path.display())
            }
            StoreError::Decode { detail } => write!(f, "decode error: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
