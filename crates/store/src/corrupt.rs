//! Storage-corruption applicators for the chaos harness.
//!
//! These implement the on-disk effect of the `TornWrite` and
//! `BitFlip` fault kinds: given offsets derived from a deterministic
//! fault draw, they damage a stored file exactly the way a torn write
//! or a flipped cell would. They are production code (the durable
//! driver applies them when a fault plan schedules storage faults),
//! so they surface typed errors rather than panicking.

use crate::StoreError;
use std::path::Path;

/// Truncates `path` by `tail_bytes`, simulating a torn write that
/// only partially reached the platter. Truncating more bytes than the
/// file holds empties it. Returns the new length.
///
/// # Errors
///
/// Propagates I/O failures with the path.
pub fn torn_write(path: &Path, tail_bytes: u64) -> Result<u64, StoreError> {
    let len = std::fs::metadata(path).map_err(|e| StoreError::io(path, e))?.len();
    let new_len = len.saturating_sub(tail_bytes.max(1));
    let f =
        std::fs::OpenOptions::new().write(true).open(path).map_err(|e| StoreError::io(path, e))?;
    f.set_len(new_len).map_err(|e| StoreError::io(path, e))?;
    Ok(new_len)
}

/// Flips bit `bit % 8` of byte `offset % len` in `path`, simulating a
/// corrupted storage cell. A zero-length file is left untouched.
///
/// # Errors
///
/// Propagates I/O failures with the path.
pub fn bit_flip(path: &Path, offset: u64, bit: u32) -> Result<(), StoreError> {
    let mut bytes = std::fs::read(path).map_err(|e| StoreError::io(path, e))?;
    if bytes.is_empty() {
        return Ok(());
    }
    let i = (offset % bytes.len() as u64) as usize;
    bytes[i] ^= 1u8 << (bit % 8);
    std::fs::write(path, &bytes).map_err(|e| StoreError::io(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(tag: &str, content: &[u8]) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("gnnav-store-corrupt-{tag}-{}", std::process::id()));
        std::fs::write(&path, content).expect("write");
        path
    }

    #[test]
    fn torn_write_truncates() {
        let p = tmpfile("torn", b"0123456789");
        assert_eq!(torn_write(&p, 4).expect("torn"), 6);
        assert_eq!(std::fs::read(&p).expect("read"), b"012345");
        // Over-truncation empties, never errors.
        assert_eq!(torn_write(&p, 1000).expect("torn"), 0);
    }

    #[test]
    fn bit_flip_flips_one_bit() {
        let p = tmpfile("flip", &[0u8; 8]);
        bit_flip(&p, 3, 2).expect("flip");
        let bytes = std::fs::read(&p).expect("read");
        assert_eq!(bytes[3], 0b100);
        assert_eq!(bytes.iter().map(|&b| b.count_ones()).sum::<u32>(), 1);
    }

    #[test]
    fn missing_file_is_typed() {
        let p = std::env::temp_dir().join("gnnav-store-no-such-file");
        let err = bit_flip(&p, 0, 0).expect_err("missing");
        assert!(err.to_string().contains("gnnav-store-no-such-file"));
    }
}
