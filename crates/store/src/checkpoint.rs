//! Atomic checkpoint files: one whole-payload frame per file.
//!
//! # Byte layout (format v1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"GNVC"
//! 4       4     format version (u32 LE, currently 1)
//! 8       4     CRC-32 of payload (u32 LE)
//! 12      ...   payload bytes
//! ```
//!
//! Unlike WAL records, a checkpoint is all-or-nothing: a torn or
//! bit-flipped file is *rejected as a whole* (metered as
//! `store.checkpoint.rejected`) and the caller falls back to an older
//! checkpoint or a cold start. Writes go through the same
//! write-temp-then-atomic-rename as WAL segments.

use crate::crc::crc32;
use crate::wal::atomic_write;
use crate::StoreError;
use gnnav_obs::names as metric;
use std::path::{Path, PathBuf};

/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"GNVC";
/// Checkpoint format version this build reads and writes.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;
/// Bytes of the checkpoint header (magic + version + CRC).
pub const CHECKPOINT_HEADER_LEN: usize = 12;

/// Writes `payload` to `path` as a framed checkpoint, atomically.
/// Metered as `store.checkpoint.writes`.
///
/// # Errors
///
/// Propagates I/O failures with the offending path.
pub fn write_checkpoint(path: &Path, payload: &[u8]) -> Result<(), StoreError> {
    let mut image = Vec::with_capacity(CHECKPOINT_HEADER_LEN + payload.len());
    image.extend_from_slice(&CHECKPOINT_MAGIC);
    image.extend_from_slice(&CHECKPOINT_FORMAT_VERSION.to_le_bytes());
    image.extend_from_slice(&crc32(payload).to_le_bytes());
    image.extend_from_slice(payload);
    atomic_write(path, &image)?;
    let metrics = gnnav_obs::global();
    if metrics.is_enabled() {
        metrics.add(metric::STORE_CHECKPOINT_WRITES, 1);
        let journal = metrics.journal();
        if journal.is_enabled() {
            journal.instant(
                metric::EVENT_CHECKPOINT,
                metric::TRACK_STORE,
                None,
                vec![
                    ("path".into(), path.display().to_string().into()),
                    ("bytes".into(), payload.len().into()),
                ],
            );
        }
    }
    Ok(())
}

/// Reads and verifies the checkpoint at `path`, returning its
/// payload. A verified read is metered as `store.checkpoint.resumes`;
/// a bad magic, version, or checksum is metered as
/// `store.checkpoint.rejected` before the typed error is returned.
///
/// # Errors
///
/// I/O failures, foreign magic, unsupported version, or checksum
/// mismatch — all carrying `path`.
pub fn read_checkpoint(path: &Path) -> Result<Vec<u8>, StoreError> {
    let raw = std::fs::read(path).map_err(|e| StoreError::io(path, e))?;
    let metrics = gnnav_obs::global();
    let reject = |err: StoreError| {
        if metrics.is_enabled() {
            metrics.add(metric::STORE_CHECKPOINT_REJECTED, 1);
        }
        Err(err)
    };
    if raw.len() < CHECKPOINT_HEADER_LEN || raw[..4] != CHECKPOINT_MAGIC {
        return reject(StoreError::BadMagic { path: path.to_path_buf() });
    }
    let version = u32::from_le_bytes([raw[4], raw[5], raw[6], raw[7]]);
    if version != CHECKPOINT_FORMAT_VERSION {
        return reject(StoreError::VersionMismatch {
            path: path.to_path_buf(),
            found: version,
            expected: CHECKPOINT_FORMAT_VERSION,
        });
    }
    let want = u32::from_le_bytes([raw[8], raw[9], raw[10], raw[11]]);
    let payload = &raw[CHECKPOINT_HEADER_LEN..];
    if crc32(payload) != want {
        return reject(StoreError::ChecksumMismatch { path: path.to_path_buf() });
    }
    if metrics.is_enabled() {
        metrics.add(metric::STORE_CHECKPOINT_RESUMES, 1);
        let journal = metrics.journal();
        if journal.is_enabled() {
            journal.instant(
                metric::EVENT_RESUME,
                metric::TRACK_STORE,
                None,
                vec![
                    ("path".into(), path.display().to_string().into()),
                    ("bytes".into(), payload.len().into()),
                ],
            );
        }
    }
    Ok(payload.to_vec())
}

/// A directory of epoch-stamped checkpoints for one logical run.
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    dir: PathBuf,
    label: String,
}

impl CheckpointDir {
    /// Binds `dir` for checkpoints labelled `label` (e.g. `"train"`),
    /// creating the directory if needed.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures with the path.
    pub fn create(dir: impl Into<PathBuf>, label: impl Into<String>) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
        Ok(CheckpointDir { dir, label: label.into() })
    }

    /// The bound directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the checkpoint taken after `epoch` epochs completed.
    pub fn path_for(&self, epoch: usize) -> PathBuf {
        self.dir.join(format!("{}-{epoch:06}.ckpt", self.label))
    }

    /// Existing checkpoint epochs, ascending. Files that do not match
    /// the `label-NNNNNN.ckpt` pattern are ignored.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures with the path.
    pub fn epochs(&self) -> Result<Vec<usize>, StoreError> {
        let mut found = Vec::new();
        let entries = std::fs::read_dir(&self.dir).map_err(|e| StoreError::io(&self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io(&self.dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(".ckpt") else { continue };
            let Some(num) = stem.strip_prefix(&format!("{}-", self.label)) else { continue };
            if let Ok(epoch) = num.parse::<usize>() {
                found.push(epoch);
            }
        }
        found.sort_unstable();
        Ok(found)
    }

    /// Writes `payload` as the checkpoint for `epoch`.
    ///
    /// # Errors
    ///
    /// See [`write_checkpoint`].
    pub fn write(&self, epoch: usize, payload: &[u8]) -> Result<(), StoreError> {
        write_checkpoint(&self.path_for(epoch), payload)
    }

    /// Loads the newest checkpoint that verifies, walking backwards
    /// over damaged ones (each rejection is metered). Returns
    /// `Ok(None)` when no checkpoint survives.
    ///
    /// # Errors
    ///
    /// Propagates directory-read and file-read I/O failures; damaged
    /// checkpoints are skipped, not errors.
    pub fn load_latest(&self) -> Result<Option<(usize, Vec<u8>)>, StoreError> {
        for epoch in self.epochs()?.into_iter().rev() {
            match read_checkpoint(&self.path_for(epoch)) {
                Ok(payload) => return Ok(Some((epoch, payload))),
                Err(StoreError::Io { path, source }) => {
                    return Err(StoreError::Io { path, source })
                }
                // Damaged (torn, flipped, foreign, wrong version):
                // fall back to the next-older checkpoint.
                Err(_) => continue,
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gnnav-store-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_read_round_trip() {
        let dir = tmpdir("rt");
        let cd = CheckpointDir::create(&dir, "train").expect("create");
        cd.write(3, b"payload").expect("write");
        let (epoch, payload) = cd.load_latest().expect("load").expect("some");
        assert_eq!(epoch, 3);
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn latest_wins_and_damaged_falls_back() {
        let dir = tmpdir("fallback");
        let cd = CheckpointDir::create(&dir, "train").expect("create");
        cd.write(1, b"old").expect("write");
        cd.write(2, b"new").expect("write");
        // Flip a payload bit in the newest checkpoint.
        let p = cd.path_for(2);
        let mut bytes = std::fs::read(&p).expect("read");
        let off = CHECKPOINT_HEADER_LEN + 1;
        bytes[off] ^= 0x40;
        std::fs::write(&p, &bytes).expect("write corrupted");
        let (epoch, payload) = cd.load_latest().expect("load").expect("some");
        assert_eq!(epoch, 1, "damaged newest falls back to older");
        assert_eq!(payload, b"old");
    }

    #[test]
    fn torn_checkpoint_rejected() {
        let dir = tmpdir("torn");
        let cd = CheckpointDir::create(&dir, "train").expect("create");
        cd.write(5, b"will be torn").expect("write");
        let p = cd.path_for(5);
        let len = std::fs::metadata(&p).expect("meta").len();
        let f = std::fs::OpenOptions::new().write(true).open(&p).expect("open rw");
        f.set_len(len - 3).expect("truncate");
        drop(f);
        let err = read_checkpoint(&p).expect_err("torn");
        assert!(matches!(err, StoreError::ChecksumMismatch { .. }));
        assert!(cd.load_latest().expect("load").is_none());
    }

    #[test]
    fn empty_dir_is_none() {
        let dir = tmpdir("empty");
        let cd = CheckpointDir::create(&dir, "train").expect("create");
        assert!(cd.load_latest().expect("load").is_none());
    }

    #[test]
    fn version_mismatch_rejected_with_path() {
        let dir = tmpdir("ver");
        let cd = CheckpointDir::create(&dir, "train").expect("create");
        let p = cd.path_for(0);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&CHECKPOINT_MAGIC);
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 4]);
        std::fs::write(&p, &bytes).expect("write");
        let err = read_checkpoint(&p).expect_err("version");
        assert!(err.to_string().contains("version 7"));
        assert!(err.to_string().contains("train-000000.ckpt"));
    }
}
