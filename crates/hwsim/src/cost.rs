//! Phase-time cost models.
//!
//! These are the simulator-side ground truths that the paper's
//! gray-box estimator (Eq. 4–8) learns to approximate:
//!
//! - `t_sample`   — host-side subgraph expansion (Eq. 7),
//! - `t_transfer` — link push of cache-missed feature rows (Eq. 6),
//! - `t_replace`  — device-side cache eviction/insertion (Eq. 5),
//! - `t_compute`  — aggregate+combine FLOPs on the device (Eq. 8),
//!
//! composed per iteration by Eq. 4:
//! `T = n_iter · max(t_sample + t_transfer, t_replace + t_compute)`
//! when the host and device pipelines overlap, or the plain sum when
//! they do not.

use crate::clock::SimTime;
use crate::profiles::Platform;

/// Numeric precision of device compute and feature transfers.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    Hash,
    PartialOrd,
    Ord,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub enum Precision {
    /// 32-bit floats (4 bytes/scalar).
    #[default]
    Fp32,
    /// 16-bit floats (2 bytes/scalar, faster compute).
    Fp16,
}

impl Precision {
    /// Bytes per scalar.
    pub fn bytes(self) -> usize {
        match self {
            Precision::Fp32 => 4,
            Precision::Fp16 => 2,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Precision::Fp32 => "FP32",
            Precision::Fp16 => "FP16",
        })
    }
}

/// The cost model for one [`Platform`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    platform: Platform,
}

impl CostModel {
    /// Creates a cost model over `platform`.
    pub fn new(platform: Platform) -> Self {
        CostModel { platform }
    }

    /// The underlying platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Host-side sampling time for a batch that expanded by
    /// `expansion_nodes` (`|V_i| - |B^0|`, Eq. 7) and touched
    /// `edges_touched` adjacency entries.
    pub fn t_sample(&self, expansion_nodes: usize, edges_touched: usize) -> SimTime {
        let vps = self.platform.host.sample_mvps * 1e6;
        // Edge scans are ~50x cheaper than vertex set operations.
        let work = expansion_nodes as f64 + edges_touched as f64 * 0.02;
        SimTime::from_micros(self.platform.host.iteration_overhead_us)
            + SimTime::from_secs(work / vps)
    }

    /// Link transfer time for `bytes` of cache-missed feature data
    /// (Eq. 6), including host-side gather at host memory bandwidth.
    pub fn t_transfer(&self, bytes: usize) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        let link = &self.platform.link;
        let gather = bytes as f64 / (self.platform.host.mem_bandwidth_gbs * 1e9);
        SimTime::from_micros(link.latency_us)
            + SimTime::from_secs(bytes as f64 / (link.bandwidth_gbs * 1e9) + gather)
    }

    /// Device-side cache update time: writing `replaced_bytes` of new
    /// rows into a cache holding `cache_entries` entries (Eq. 5 — the
    /// index maintenance grows slowly with cache size).
    pub fn t_replace(&self, replaced_bytes: usize, cache_entries: usize) -> SimTime {
        if replaced_bytes == 0 {
            return SimTime::ZERO;
        }
        let write = replaced_bytes as f64 / (self.platform.device.mem_bandwidth_gbs * 1e9);
        let index_us = 2.0 * ((cache_entries as f64) + 1.0).ln().max(1.0);
        SimTime::from_secs(write) + SimTime::from_micros(index_us)
    }

    /// Device compute time for `flops` of aggregate+combine work on a
    /// batch of `batch_nodes` nodes (Eq. 8). Small batches under-
    /// utilize the device: effective throughput scales by
    /// `n / (n + n_half)` with `n_half = 8192` nodes.
    pub fn t_compute(&self, flops: f64, batch_nodes: usize, precision: Precision) -> SimTime {
        let dev = &self.platform.device;
        let n = batch_nodes as f64;
        let utilization = 0.25 * n / (n + 8192.0);
        let speed = match precision {
            Precision::Fp32 => 1.0,
            Precision::Fp16 => dev.fp16_speedup,
        };
        let eff = dev.compute_tflops * 1e12 * utilization.max(1e-4) * speed;
        SimTime::from_micros(dev.launch_overhead_us) + SimTime::from_secs(flops / eff)
    }

    /// Composes one iteration's phase times per Eq. 4: with
    /// `pipelined`, host work (`sample + transfer`) overlaps device
    /// work (`replace + compute`); otherwise the phases serialize.
    pub fn iteration_time(
        &self,
        t_sample: SimTime,
        t_transfer: SimTime,
        t_replace: SimTime,
        t_compute: SimTime,
        pipelined: bool,
    ) -> SimTime {
        let host = t_sample + t_transfer;
        let device = t_replace + t_compute;
        if pipelined {
            host.max(device)
        } else {
            host + device
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::Platform;

    fn model() -> CostModel {
        CostModel::new(Platform::default_rtx4090())
    }

    #[test]
    fn sample_time_monotone_in_expansion() {
        let m = model();
        assert!(m.t_sample(10_000, 0) > m.t_sample(1_000, 0));
        assert!(m.t_sample(1_000, 50_000) > m.t_sample(1_000, 0));
    }

    #[test]
    fn transfer_time_zero_for_zero_bytes() {
        let m = model();
        assert_eq!(m.t_transfer(0), SimTime::ZERO);
        assert!(m.t_transfer(1).as_secs() > 0.0, "latency floor applies");
    }

    #[test]
    fn transfer_scales_roughly_linearly() {
        let m = model();
        let t1 = m.t_transfer(10_000_000).as_secs();
        let t2 = m.t_transfer(20_000_000).as_secs();
        assert!(t2 > 1.7 * t1 && t2 < 2.3 * t1, "t1={t1} t2={t2}");
    }

    #[test]
    fn slower_link_slower_transfer() {
        let fast = CostModel::new(Platform::default_rtx4090()); // PCIe4
        let slow = CostModel::new(Platform::default_m90()); // PCIe3
        let b = 50_000_000;
        assert!(slow.t_transfer(b) > fast.t_transfer(b));
    }

    #[test]
    fn compute_time_decreases_with_utilization() {
        let m = model();
        let flops = 1e9;
        // Same work over a bigger batch runs at higher utilization.
        let small = m.t_compute(flops, 512, Precision::Fp32);
        let large = m.t_compute(flops, 32_768, Precision::Fp32);
        assert!(large < small);
    }

    #[test]
    fn fp16_faster_than_fp32() {
        let m = model();
        let a = m.t_compute(1e10, 8192, Precision::Fp16);
        let b = m.t_compute(1e10, 8192, Precision::Fp32);
        assert!(a < b);
        assert_eq!(Precision::Fp16.bytes(), 2);
        assert_eq!(Precision::Fp32.bytes(), 4);
    }

    #[test]
    fn replace_time_zero_when_nothing_replaced() {
        let m = model();
        assert_eq!(m.t_replace(0, 1_000_000), SimTime::ZERO);
        assert!(m.t_replace(1000, 10).as_secs() > 0.0);
    }

    #[test]
    fn pipelined_iteration_is_max_not_sum() {
        let m = model();
        let s = SimTime::from_millis(3.0);
        let t = SimTime::from_millis(1.0);
        let r = SimTime::from_millis(0.5);
        let c = SimTime::from_millis(2.0);
        let pipe = m.iteration_time(s, t, r, c, true);
        let seq = m.iteration_time(s, t, r, c, false);
        assert!((pipe.as_millis() - 4.0).abs() < 1e-9);
        assert!((seq.as_millis() - 6.5).abs() < 1e-9);
    }

    #[test]
    fn weaker_device_computes_slower() {
        let strong = CostModel::new(Platform::default_rtx4090());
        let weak = CostModel::new(Platform::default_m90());
        let t_s = strong.t_compute(1e10, 8192, Precision::Fp32);
        let t_w = weak.t_compute(1e10, 8192, Precision::Fp32);
        assert!(t_w > t_s);
    }

    #[test]
    fn precision_display() {
        assert_eq!(Precision::Fp32.to_string(), "FP32");
        assert_eq!(Precision::Fp16.to_string(), "FP16");
    }
}

#[cfg(test)]
mod overhead_tests {
    use super::*;
    use crate::profiles::Platform;

    #[test]
    fn sample_time_has_per_iteration_floor() {
        let m = CostModel::new(Platform::default_rtx4090());
        let floor = m.t_sample(0, 0).as_secs();
        assert!(floor > 0.0, "per-iteration overhead must be charged");
        let overhead_us = m.platform().host.iteration_overhead_us;
        assert!((floor - overhead_us * 1e-6).abs() < 1e-12);
    }

    #[test]
    fn weaker_host_pays_more_overhead() {
        let fast = CostModel::new(Platform::default_rtx4090()); // Xeon host
        let slow = CostModel::new(Platform::default_m90()); // desktop host
        assert!(slow.t_sample(0, 0) > fast.t_sample(0, 0));
    }
}
