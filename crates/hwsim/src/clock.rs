//! Simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// A span of simulated time, stored in seconds.
///
/// Newtype so simulated durations cannot be confused with wall-clock
/// measurements or raw floats.
///
/// # Example
///
/// ```
/// use gnnav_hwsim::SimTime;
///
/// let t = SimTime::from_micros(1500.0) + SimTime::from_secs(0.001);
/// assert!((t.as_secs() - 0.0025).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Zero duration.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be finite and >= 0");
        SimTime(secs)
    }

    /// Creates a duration from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `micros` is negative or not finite.
    pub fn from_micros(micros: f64) -> Self {
        Self::from_secs(micros * 1e-6)
    }

    /// Creates a duration from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis(millis: f64) -> Self {
        Self::from_secs(millis * 1e-3)
    }

    /// The duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The duration in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The duration in microseconds (the unit Chrome trace-event
    /// timestamps use, see `gnnav_obs::journal`).
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The larger of two durations (models parallel composition, as in
    /// the `max` of the paper's Eq. 4).
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.1}us", self.0 * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert!((SimTime::from_millis(2.0).as_secs() - 0.002).abs() < 1e-15);
        assert!((SimTime::from_micros(5.0).as_millis() - 0.005).abs() < 1e-12);
        assert!((SimTime::from_millis(2.0).as_micros() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let mut t = SimTime::from_secs(1.0) + SimTime::from_secs(0.5);
        t += SimTime::from_secs(0.5);
        assert_eq!(t.as_secs(), 2.0);
        assert_eq!((t * 2.0).as_secs(), 4.0);
        assert_eq!(t.max(SimTime::from_secs(5.0)).as_secs(), 5.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: SimTime = (0..4).map(|_| SimTime::from_millis(1.0)).sum();
        assert!((total.as_millis() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500s");
        assert_eq!(SimTime::from_millis(2.0).to_string(), "2.000ms");
        assert_eq!(SimTime::from_micros(3.0).to_string(), "3.0us");
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn negative_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }
}
