//! Heterogeneous-platform simulator for the GNNavigator reproduction.
//!
//! The paper measures GNN training on real CPU–GPU platforms
//! (RTX 4090, A100, M90 over PCIe). This crate substitutes an
//! event-level cost model with the same decomposition the paper's
//! performance model uses (Eq. 4–10): per-phase times for sampling,
//! transfer, cache replacement, and compute, plus a device
//! [`MemoryLedger`] implementing `Γ = Γ_model + Γ_cache + Γ_runtime`.
//!
//! # Example
//!
//! ```
//! use gnnav_hwsim::{CostModel, Platform, Precision};
//!
//! let cost = CostModel::new(Platform::default_rtx4090());
//! let t = cost.t_compute(1e9, 4096, Precision::Fp32);
//! assert!(t.as_secs() > 0.0);
//! ```

pub mod clock;
pub mod cost;
pub mod memory;
pub mod profiles;

pub use clock::SimTime;
pub use cost::{CostModel, Precision};
pub use memory::MemoryLedger;
pub use profiles::{DeviceProfile, HostProfile, LinkProfile, Platform};

use std::error::Error;
use std::fmt;

/// Errors from the hardware simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwError {
    /// A memory claim exceeded the device capacity.
    OutOfMemory {
        /// Total bytes the claim would require.
        requested: usize,
        /// Device capacity in bytes.
        capacity: usize,
    },
    /// An invalid simulator configuration.
    InvalidConfig(String),
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::OutOfMemory { requested, capacity } => write!(
                f,
                "device out of memory: requested {requested} bytes, capacity {capacity} bytes"
            ),
            HwError::InvalidConfig(msg) => write!(f, "invalid hardware configuration: {msg}"),
        }
    }
}

impl Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_trait_impls() {
        fn assert_err<T: Error + Send + Sync>() {}
        assert_err::<HwError>();
        assert!(HwError::InvalidConfig("x".into()).to_string().contains('x'));
    }
}
