//! Hardware profiles: devices, hosts, and host–device links.
//!
//! The paper evaluates on RTX 4090, A100, and M90 devices connected to
//! CPU hosts over PCIe. We model each platform with a handful of
//! published-spec-derived parameters; the cost models in
//! [`crate::cost`] turn them into phase times. Absolute values only
//! set the time unit — what the reproduction needs is the *ratio*
//! between compute, link, and host-sampling throughput, which these
//! presets preserve.

use serde::{Deserialize, Serialize};

/// A compute device ("device" in the paper: GPU, FPGA, accelerator).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable name.
    pub name: String,
    /// Peak FP32 throughput in TFLOP/s.
    pub compute_tflops: f64,
    /// Device memory bandwidth in GB/s (drives cache-replacement
    /// cost).
    pub mem_bandwidth_gbs: f64,
    /// Device memory capacity in bytes.
    pub mem_capacity_bytes: usize,
    /// Fixed per-iteration launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Throughput multiplier when computing in FP16.
    pub fp16_speedup: f64,
}

impl DeviceProfile {
    /// NVIDIA RTX 4090 (Ada): 82.6 TFLOP/s FP32, 1008 GB/s, 24 GB.
    pub fn rtx4090() -> Self {
        DeviceProfile {
            name: "RTX 4090".into(),
            compute_tflops: 82.6,
            mem_bandwidth_gbs: 1008.0,
            mem_capacity_bytes: 24 * GB,
            launch_overhead_us: 30.0,
            fp16_speedup: 2.0,
        }
    }

    /// NVIDIA A100 (Ampere): 19.5 TFLOP/s FP32, 1555 GB/s, 40 GB.
    pub fn a100() -> Self {
        DeviceProfile {
            name: "A100".into(),
            compute_tflops: 19.5,
            mem_bandwidth_gbs: 1555.0,
            mem_capacity_bytes: 40 * GB,
            launch_overhead_us: 25.0,
            fp16_speedup: 4.0,
        }
    }

    /// "M90": the paper's mid-range accelerator; modeled as a
    /// 10 TFLOP/s, 400 GB/s, 12 GB part.
    pub fn m90() -> Self {
        DeviceProfile {
            name: "M90".into(),
            compute_tflops: 10.0,
            mem_bandwidth_gbs: 400.0,
            mem_capacity_bytes: 12 * GB,
            launch_overhead_us: 40.0,
            fp16_speedup: 2.0,
        }
    }

    /// A resource-limited variant of this device with `fraction` of
    /// its memory capacity (models the paper's "Pa-Low" scenario of
    /// PaGraph under memory pressure).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn with_memory_fraction(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        self.mem_capacity_bytes = (self.mem_capacity_bytes as f64 * fraction) as usize;
        self.name = format!("{} ({}% mem)", self.name, (fraction * 100.0).round());
        self
    }
}

/// A general-purpose host ("host" in the paper: the CPU side that
/// samples subgraphs and stores the full feature table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostProfile {
    /// Human-readable name.
    pub name: String,
    /// Subgraph-sampling throughput in million vertices per second.
    pub sample_mvps: f64,
    /// Host memory bandwidth in GB/s (gathering miss rows before the
    /// PCIe push).
    pub mem_bandwidth_gbs: f64,
    /// Fixed per-iteration overhead in microseconds (dataloader
    /// queueing, Python dispatch, synchronization) — the reason real
    /// frameworks cannot shrink epoch time arbitrarily by enlarging
    /// batches.
    pub iteration_overhead_us: f64,
}

impl HostProfile {
    /// A contemporary server CPU (Xeon-class).
    pub fn xeon() -> Self {
        HostProfile {
            name: "Xeon".into(),
            sample_mvps: 150.0,
            mem_bandwidth_gbs: 80.0,
            iteration_overhead_us: 120.0,
        }
    }

    /// A slower desktop-class host.
    pub fn desktop() -> Self {
        HostProfile {
            name: "Desktop".into(),
            sample_mvps: 60.0,
            mem_bandwidth_gbs: 40.0,
            iteration_overhead_us: 250.0,
        }
    }
}

/// A host–device link (PCIe or DMA).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Human-readable name.
    pub name: String,
    /// Effective (not theoretical) bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Per-transfer latency in microseconds.
    pub latency_us: f64,
}

impl LinkProfile {
    /// PCIe 3.0 x16 at a realistic ~8 GB/s effective.
    pub fn pcie3() -> Self {
        LinkProfile { name: "PCIe 3.0 x16".into(), bandwidth_gbs: 8.0, latency_us: 20.0 }
    }

    /// PCIe 4.0 x16 at ~16 GB/s effective.
    pub fn pcie4() -> Self {
        LinkProfile { name: "PCIe 4.0 x16".into(), bandwidth_gbs: 16.0, latency_us: 15.0 }
    }

    /// PCIe 5.0 x16 at ~32 GB/s effective.
    pub fn pcie5() -> Self {
        LinkProfile { name: "PCIe 5.0 x16".into(), bandwidth_gbs: 32.0, latency_us: 12.0 }
    }
}

/// A complete heterogeneous platform: host + device + link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// The host side.
    pub host: HostProfile,
    /// The device side.
    pub device: DeviceProfile,
    /// The interconnect.
    pub link: LinkProfile,
}

impl Platform {
    /// The paper's primary platform: Xeon host + RTX 4090 over PCIe 4.
    pub fn default_rtx4090() -> Self {
        Platform {
            host: HostProfile::xeon(),
            device: DeviceProfile::rtx4090(),
            link: LinkProfile::pcie4(),
        }
    }

    /// Xeon host + A100 over PCIe 4.
    pub fn default_a100() -> Self {
        Platform {
            host: HostProfile::xeon(),
            device: DeviceProfile::a100(),
            link: LinkProfile::pcie4(),
        }
    }

    /// Desktop host + M90 over PCIe 3 (the constrained scenario).
    pub fn default_m90() -> Self {
        Platform {
            host: HostProfile::desktop(),
            device: DeviceProfile::m90(),
            link: LinkProfile::pcie3(),
        }
    }
}

const GB: usize = 1_000_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_plausible() {
        let d4090 = DeviceProfile::rtx4090();
        let da100 = DeviceProfile::a100();
        let dm90 = DeviceProfile::m90();
        assert!(d4090.compute_tflops > da100.compute_tflops);
        assert!(da100.mem_bandwidth_gbs > d4090.mem_bandwidth_gbs);
        assert!(dm90.compute_tflops < da100.compute_tflops);
        assert!(da100.mem_capacity_bytes > d4090.mem_capacity_bytes);
    }

    #[test]
    fn memory_fraction_scales_capacity() {
        let full = DeviceProfile::rtx4090();
        let low = DeviceProfile::rtx4090().with_memory_fraction(0.25);
        assert_eq!(low.mem_capacity_bytes, full.mem_capacity_bytes / 4);
        assert!(low.name.contains("25"));
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1]")]
    fn memory_fraction_validated() {
        let _ = DeviceProfile::rtx4090().with_memory_fraction(0.0);
    }

    #[test]
    fn link_presets_ordered() {
        assert!(LinkProfile::pcie3().bandwidth_gbs < LinkProfile::pcie4().bandwidth_gbs);
        assert!(LinkProfile::pcie4().bandwidth_gbs < LinkProfile::pcie5().bandwidth_gbs);
    }

    #[test]
    fn platforms_compose() {
        let p = Platform::default_m90();
        assert_eq!(p.device.name, "M90");
        assert_eq!(p.link.name, "PCIe 3.0 x16");
    }

    #[test]
    fn profiles_serde_roundtrip() {
        // Serde support is part of the public contract (configs are
        // serialized into profile databases).
        let p = Platform::default_rtx4090();
        let json = serde_json_like(&p);
        assert!(json.contains("RTX 4090"));
    }

    fn serde_json_like(p: &Platform) -> String {
        // No serde_json dependency: just verify Serialize is derivable
        // by using the Debug representation as a stand-in check plus a
        // compile-time assertion that Platform: Serialize.
        fn assert_serialize<T: serde::Serialize>() {}
        assert_serialize::<Platform>();
        format!("{p:?}")
    }
}
