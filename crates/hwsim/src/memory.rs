//! Device memory ledger.
//!
//! Tracks the three components of the paper's Eq. 9:
//! `Γ = Γ_model + Γ_cache + Γ_runtime`, enforces the device capacity,
//! and records the peak footprint that the evaluation tables report.

use crate::HwError;

/// Accounting of device memory over a training run.
///
/// # Example
///
/// ```
/// use gnnav_hwsim::MemoryLedger;
///
/// # fn main() -> Result<(), gnnav_hwsim::HwError> {
/// let mut mem = MemoryLedger::new(1_000_000);
/// mem.set_model_bytes(100_000)?;
/// mem.set_cache_bytes(400_000)?;
/// mem.begin_batch(300_000)?; // transient activations
/// mem.end_batch();
/// assert_eq!(mem.peak_bytes(), 800_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryLedger {
    capacity: usize,
    model: usize,
    cache: usize,
    runtime: usize,
    peak: usize,
}

impl MemoryLedger {
    /// Creates a ledger for a device with `capacity_bytes` of memory.
    pub fn new(capacity_bytes: usize) -> Self {
        MemoryLedger { capacity: capacity_bytes, model: 0, cache: 0, runtime: 0, peak: 0 }
    }

    /// Sets the static model footprint `Γ_model`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::OutOfMemory`] if the total would exceed
    /// capacity.
    pub fn set_model_bytes(&mut self, bytes: usize) -> Result<(), HwError> {
        self.try_set(|m| m.model = bytes)
    }

    /// Sets the cache footprint `Γ_cache`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::OutOfMemory`] if the total would exceed
    /// capacity.
    pub fn set_cache_bytes(&mut self, bytes: usize) -> Result<(), HwError> {
        self.try_set(|m| m.cache = bytes)
    }

    /// Claims transient per-batch memory `Γ_runtime` for the current
    /// iteration.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::OutOfMemory`] if the total would exceed
    /// capacity; the claim is rolled back.
    pub fn begin_batch(&mut self, bytes: usize) -> Result<(), HwError> {
        self.try_set(|m| m.runtime = bytes)
    }

    /// Releases the current batch's transient memory.
    pub fn end_batch(&mut self) {
        self.runtime = 0;
    }

    fn try_set(&mut self, apply: impl FnOnce(&mut Self)) -> Result<(), HwError> {
        let mut next = self.clone();
        apply(&mut next);
        // An overflowing sum cannot possibly fit (capacity is a
        // usize), so it is reported as OOM, not a panic — fault
        // injection deliberately produces absurd claims.
        let total = next
            .model
            .checked_add(next.cache)
            .and_then(|t| t.checked_add(next.runtime))
            .unwrap_or(usize::MAX);
        if total > next.capacity {
            return Err(HwError::OutOfMemory { requested: total, capacity: next.capacity });
        }
        *self = next;
        self.peak = self.peak.max(total);
        Ok(())
    }

    /// Device capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    /// Bytes currently free (capacity minus model, cache, runtime) —
    /// what a transmission strategy may claim for caching.
    pub fn free_bytes(&self) -> usize {
        self.capacity.saturating_sub(self.model + self.cache + self.runtime)
    }

    /// Current `Γ_model`.
    pub fn model_bytes(&self) -> usize {
        self.model
    }

    /// Current `Γ_cache`.
    pub fn cache_bytes(&self) -> usize {
        self.cache
    }

    /// Current `Γ_runtime`.
    pub fn runtime_bytes(&self) -> usize {
        self.runtime
    }

    /// Peak total footprint observed so far — the `Γ` the evaluation
    /// reports.
    pub fn peak_bytes(&self) -> usize {
        self.peak
    }

    /// Restores a previously observed peak (checkpoint resume): the
    /// recorded high-water mark becomes the max of the current and
    /// restored values, so a resumed run reports the same peak as an
    /// uninterrupted one.
    pub fn restore_peak(&mut self, peak_bytes: usize) {
        self.peak = self.peak.max(peak_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_accumulate_and_peak_tracks() {
        let mut m = MemoryLedger::new(100);
        m.set_model_bytes(10).expect("fits");
        m.set_cache_bytes(40).expect("fits");
        m.begin_batch(30).expect("fits");
        assert_eq!(m.peak_bytes(), 80);
        m.end_batch();
        assert_eq!(m.runtime_bytes(), 0);
        m.begin_batch(20).expect("fits");
        assert_eq!(m.peak_bytes(), 80, "peak keeps the max");
        assert_eq!(m.free_bytes(), 30);
    }

    #[test]
    fn oom_rejected_and_rolled_back() {
        let mut m = MemoryLedger::new(100);
        m.set_cache_bytes(90).expect("fits");
        let err = m.begin_batch(20).unwrap_err();
        assert!(matches!(err, HwError::OutOfMemory { requested: 110, capacity: 100 }));
        // Rolled back: runtime still 0, cache intact.
        assert_eq!(m.runtime_bytes(), 0);
        assert_eq!(m.cache_bytes(), 90);
        assert_eq!(m.peak_bytes(), 90);
    }

    #[test]
    fn resizing_cache_down_frees_capacity() {
        let mut m = MemoryLedger::new(100);
        m.set_cache_bytes(80).expect("fits");
        m.set_cache_bytes(10).expect("shrink ok");
        m.begin_batch(80).expect("fits now");
    }

    #[test]
    fn failed_claim_then_retry_sequence_is_clean() {
        // A rejected claim must leave every component AND the peak
        // exactly as they were, so a retry (possibly after freeing
        // memory) starts from pristine state.
        let mut m = MemoryLedger::new(100);
        m.set_model_bytes(20).expect("fits");
        m.set_cache_bytes(50).expect("fits");
        let before = m.clone();
        for _ in 0..3 {
            assert!(m.begin_batch(40).is_err(), "claim over capacity");
            assert_eq!(m, before, "failed claim must not mutate the ledger");
        }
        // Shrink the cache (the degradation ladder's first rung),
        // then the same claim fits.
        m.set_cache_bytes(30).expect("shrink ok");
        m.begin_batch(40).expect("fits after shrink");
        assert_eq!(m.peak_bytes(), 90);
        m.end_batch();
    }

    #[test]
    fn failed_cache_resize_rolls_back() {
        let mut m = MemoryLedger::new(100);
        m.set_cache_bytes(40).expect("fits");
        m.begin_batch(30).expect("fits");
        assert!(m.set_cache_bytes(80).is_err(), "would exceed capacity");
        assert_eq!(m.cache_bytes(), 40, "prior cache size kept");
        assert_eq!(m.runtime_bytes(), 30, "runtime untouched");
        assert_eq!(m.peak_bytes(), 70, "peak untouched by the failure");
    }

    #[test]
    fn absurd_claims_report_oom_instead_of_overflowing() {
        let mut m = MemoryLedger::new(100);
        m.set_model_bytes(50).expect("fits");
        let err = m.begin_batch(usize::MAX).unwrap_err();
        assert!(matches!(err, HwError::OutOfMemory { .. }));
        assert_eq!(m.runtime_bytes(), 0);
        assert_eq!(m.free_bytes(), 50);
    }

    #[test]
    fn error_displays_sizes() {
        let e = HwError::OutOfMemory { requested: 10, capacity: 5 };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains('5'));
    }
}
