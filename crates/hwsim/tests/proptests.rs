//! Property-based tests for the hardware simulator.

use gnnav_hwsim::{CostModel, MemoryLedger, Platform, Precision, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ledger_total_never_exceeds_capacity(
        capacity in 1usize..1_000_000,
        claims in proptest::collection::vec((0usize..500_000, 0usize..500_000, 0usize..500_000), 1..20),
    ) {
        let mut m = MemoryLedger::new(capacity);
        for (model, cache, batch) in claims {
            let _ = m.set_model_bytes(model);
            let _ = m.set_cache_bytes(cache);
            let _ = m.begin_batch(batch);
            let total = m.model_bytes() + m.cache_bytes() + m.runtime_bytes();
            prop_assert!(total <= capacity, "total {total} over capacity {capacity}");
            prop_assert!(m.peak_bytes() <= capacity);
            m.end_batch();
        }
    }

    #[test]
    fn peak_is_monotone(claims in proptest::collection::vec(0usize..1000, 1..30)) {
        let mut m = MemoryLedger::new(10_000);
        let mut last_peak = 0;
        for c in claims {
            let _ = m.begin_batch(c);
            prop_assert!(m.peak_bytes() >= last_peak);
            last_peak = m.peak_bytes();
            m.end_batch();
        }
    }

    #[test]
    fn transfer_time_monotone_in_bytes(a in 0usize..100_000_000, b in 0usize..100_000_000) {
        let cost = CostModel::new(Platform::default_rtx4090());
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(cost.t_transfer(lo) <= cost.t_transfer(hi));
    }

    #[test]
    fn sample_time_monotone_in_work(a in 0usize..10_000_000, b in 0usize..10_000_000) {
        let cost = CostModel::new(Platform::default_rtx4090());
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(cost.t_sample(lo, 0) <= cost.t_sample(hi, 0));
        prop_assert!(cost.t_sample(0, lo) <= cost.t_sample(0, hi));
    }

    #[test]
    fn compute_time_monotone_in_flops(a in 0.0f64..1e13, b in 0.0f64..1e13) {
        let cost = CostModel::new(Platform::default_a100());
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(
            cost.t_compute(lo, 4096, Precision::Fp32)
                <= cost.t_compute(hi, 4096, Precision::Fp32)
        );
    }

    #[test]
    fn pipelined_never_slower_than_serial(
        s in 0.0f64..10.0,
        t in 0.0f64..10.0,
        r in 0.0f64..10.0,
        c in 0.0f64..10.0,
    ) {
        let cost = CostModel::new(Platform::default_m90());
        let (ts, tt) = (SimTime::from_secs(s), SimTime::from_secs(t));
        let (tr, tc) = (SimTime::from_secs(r), SimTime::from_secs(c));
        let piped = cost.iteration_time(ts, tt, tr, tc, true);
        let serial = cost.iteration_time(ts, tt, tr, tc, false);
        prop_assert!(piped <= serial);
        // Pipelining can at best hide the smaller side entirely.
        prop_assert!(piped.as_secs() >= (s + t).max(r + c) - 1e-12);
    }

    #[test]
    fn simtime_arithmetic_is_consistent(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let x = SimTime::from_secs(a);
        let y = SimTime::from_secs(b);
        prop_assert!(((x + y).as_secs() - (a + b)).abs() < 1e-9 * (1.0 + a + b));
        prop_assert_eq!(x.max(y).as_secs(), a.max(b));
    }
}
