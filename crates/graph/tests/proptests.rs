//! Property-based tests for the graph substrate.

use gnnav_graph::{Graph, GraphBuilder, NodeId};
use proptest::prelude::*;

/// Strategy: a random edge list over up to `n` nodes.
fn edges(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_nodes).prop_flat_map(move |n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..max_edges))
    })
}

proptest! {
    #[test]
    fn builder_output_is_valid_csr((n, list) in edges(64, 256)) {
        let mut b = GraphBuilder::new(n);
        b.add_edges(list);
        let g = b.build().expect("build");
        // Reconstructing from the raw CSR arrays must validate.
        let rebuilt = Graph::from_csr(
            g.num_nodes(),
            g.offsets().to_vec(),
            g.targets().to_vec(),
        );
        prop_assert!(rebuilt.is_ok());
        prop_assert_eq!(rebuilt.expect("valid"), g);
    }

    #[test]
    fn symmetrized_graph_is_symmetric((n, list) in edges(48, 192)) {
        let mut b = GraphBuilder::new(n);
        b.add_edges(list);
        let g = b.symmetrize().build().expect("build");
        for (u, v) in g.edges() {
            prop_assert!(g.has_edge(v, u), "edge {}->{} missing reverse", u, v);
        }
    }

    #[test]
    fn degrees_sum_to_edge_count((n, list) in edges(64, 256)) {
        let mut b = GraphBuilder::new(n);
        b.add_edges(list);
        let g = b.build().expect("build");
        let degree_sum: usize = g.node_ids().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, g.num_edges());
    }

    #[test]
    fn induced_subgraph_edges_are_subset((n, list) in edges(48, 192)) {
        let mut b = GraphBuilder::new(n);
        b.add_edges(list);
        let g = b.build().expect("build");
        // Take every other node as the subgraph set.
        let nodes: Vec<NodeId> = (0..n as u32).step_by(2).collect();
        let (sub, map) = g.induced_subgraph(&nodes).expect("induce");
        prop_assert_eq!(sub.num_nodes(), nodes.len());
        for (lu, lv) in sub.edges() {
            let (ou, ov) = (map[lu as usize], map[lv as usize]);
            prop_assert!(g.has_edge(ou, ov), "subgraph edge {}->{} not in parent", ou, ov);
        }
    }

    #[test]
    fn induced_subgraph_keeps_all_internal_edges((n, list) in edges(32, 128)) {
        let mut b = GraphBuilder::new(n);
        b.add_edges(list);
        let g = b.build().expect("build");
        let nodes: Vec<NodeId> = (0..n as u32 / 2).collect();
        let in_set = |v: NodeId| (v as usize) < nodes.len();
        let (sub, _) = g.induced_subgraph(&nodes).expect("induce");
        let internal = g
            .edges()
            .filter(|&(u, v)| in_set(u) && in_set(v))
            .count();
        prop_assert_eq!(sub.num_edges(), internal);
    }

    #[test]
    fn generators_produce_valid_graphs(seed in 0u64..50, n in 50usize..300) {
        let g = gnnav_graph::generators::barabasi_albert(n, 3, seed).expect("gen");
        prop_assert_eq!(g.num_nodes(), n);
        // Validation through from_csr (sorted, in-range, monotone).
        prop_assert!(Graph::from_csr(
            g.num_nodes(),
            g.offsets().to_vec(),
            g.targets().to_vec()
        )
        .is_ok());
    }

    #[test]
    fn features_match_community_count(n in 10usize..200, dim in 1usize..32) {
        use gnnav_graph::{FeatureSpec, Features};
        let communities: Vec<u32> = (0..n as u32).map(|v| v % 5).collect();
        let f = Features::synthesize(&communities, &FeatureSpec::new(dim, 5), 1);
        prop_assert_eq!(f.num_nodes(), n);
        prop_assert_eq!(f.matrix().len(), n * dim);
        prop_assert!(f.labels().iter().all(|&l| (l as usize) < 5));
    }
}
