//! Plain-text edge-list I/O.
//!
//! Lets users bring their own graphs (and export the synthetic
//! stand-ins for inspection). The format is one `u v` pair per line;
//! `#`-prefixed lines are comments — the common denominator of SNAP
//! and OGB edge dumps.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::GraphError;
use std::io::{BufRead, BufReader, Read, Write};

/// Reads an edge-list graph from `reader` (pass `&mut reader` to keep
/// ownership). Node count is inferred from the largest endpoint unless
/// `num_nodes` is given.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for unparseable lines, and
/// [`GraphError::NodeOutOfRange`] if an endpoint exceeds a provided
/// `num_nodes`.
///
/// # Example
///
/// ```
/// use gnnav_graph::io::read_edge_list;
///
/// # fn main() -> Result<(), gnnav_graph::GraphError> {
/// let text = "# a comment\n0 1\n1 2\n";
/// let g = read_edge_list(text.as_bytes(), None, true)?;
/// assert_eq!(g.num_nodes(), 3);
/// assert!(g.has_edge(2, 1)); // symmetrized
/// # Ok(())
/// # }
/// ```
pub fn read_edge_list<R: Read>(
    reader: R,
    num_nodes: Option<usize>,
    symmetrize: bool,
) -> Result<Graph, GraphError> {
    let reader = BufReader::new(reader);
    let mut edges = Vec::new();
    let mut max_node = 0u32;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| {
            GraphError::InvalidParameter(format!("i/o error at line {}: {e}", lineno + 1))
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u32, GraphError> {
            tok.ok_or_else(|| {
                GraphError::InvalidParameter(format!(
                    "line {}: expected `u v`, got `{trimmed}`",
                    lineno + 1
                ))
            })?
            .parse()
            .map_err(|e| GraphError::InvalidParameter(format!("line {}: {e}", lineno + 1)))
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        max_node = max_node.max(u).max(v);
        edges.push((u, v));
    }
    let inferred = if edges.is_empty() { 0 } else { max_node as usize + 1 };
    let n = num_nodes.unwrap_or(inferred);
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    b.add_edges(edges);
    if symmetrize {
        b.symmetrize();
    }
    b.build()
}

/// Writes `graph` as an edge list to `writer` (pass `&mut writer` to
/// keep ownership), one directed edge per line, preceded by a comment
/// header with the node/edge counts.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "# nodes {} edges {}", graph.num_nodes(), graph.num_edges())?;
    for (u, v) in graph.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::barabasi_albert;

    #[test]
    fn roundtrip_preserves_graph() {
        let g = barabasi_albert(200, 3, 1).expect("gen");
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let parsed = read_edge_list(buf.as_slice(), Some(200), false).expect("read");
        assert_eq!(parsed, g);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n0 1\n# middle\n2 0\n";
        let g = read_edge_list(text.as_bytes(), None, false).expect("read");
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn node_count_inferred_or_explicit() {
        let text = "0 5\n";
        let inferred = read_edge_list(text.as_bytes(), None, false).expect("read");
        assert_eq!(inferred.num_nodes(), 6);
        let explicit = read_edge_list(text.as_bytes(), Some(10), false).expect("read");
        assert_eq!(explicit.num_nodes(), 10);
    }

    #[test]
    fn bad_lines_rejected_with_location() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(text.as_bytes(), None, false).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let text2 = "0\n";
        assert!(read_edge_list(text2.as_bytes(), None, false).is_err());
    }

    #[test]
    fn out_of_range_endpoint_rejected() {
        let text = "0 9\n";
        let err = read_edge_list(text.as_bytes(), Some(5), false).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 9, .. }));
    }

    #[test]
    fn empty_input_empty_graph() {
        let g = read_edge_list("".as_bytes(), None, true).expect("read");
        assert_eq!(g.num_nodes(), 0);
    }
}
