//! Graph partitioning.
//!
//! PaGraph partitions the graph so each GPU's cache serves a locality-
//! coherent shard; partitioning is the natural substrate for extending
//! the runtime to multiple devices. The greedy BFS partitioner here is
//! a light-weight stand-in for METIS: grow `k` regions breadth-first
//! from well-separated high-degree seeds, always extending the
//! currently smallest region.

use crate::csr::{Graph, NodeId};
use crate::stats::nodes_by_degree_desc;
use crate::GraphError;
use std::collections::VecDeque;

/// Assigns every node to one of `k` partitions with balanced greedy
/// BFS growth. Returns one partition id per node.
///
/// Unreached nodes (isolated vertices or exhausted frontiers) are
/// assigned round-robin at the end, so the result is always total.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `k == 0` or
/// `k > g.num_nodes()`.
///
/// # Example
///
/// ```
/// use gnnav_graph::generators::barabasi_albert;
/// use gnnav_graph::partition::{edge_cut, greedy_bfs_partition};
///
/// # fn main() -> Result<(), gnnav_graph::GraphError> {
/// let g = barabasi_albert(500, 3, 1)?;
/// let parts = greedy_bfs_partition(&g, 4)?;
/// assert_eq!(parts.len(), 500);
/// assert!(edge_cut(&g, &parts) < g.num_edges());
/// # Ok(())
/// # }
/// ```
pub fn greedy_bfs_partition(g: &Graph, k: usize) -> Result<Vec<u32>, GraphError> {
    if k == 0 || k > g.num_nodes() {
        return Err(GraphError::InvalidParameter(format!(
            "k = {k} must be in 1..={}",
            g.num_nodes()
        )));
    }
    const UNASSIGNED: u32 = u32::MAX;
    let mut assignment = vec![UNASSIGNED; g.num_nodes()];

    // Seeds: highest-degree nodes that are not adjacent to an earlier
    // seed (separation keeps regions from colliding immediately).
    let order = nodes_by_degree_desc(g);
    let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
    for &v in &order {
        if seeds.len() == k {
            break;
        }
        let adjacent_to_seed = g.neighbors(v).iter().any(|u| seeds.contains(u));
        if !adjacent_to_seed {
            seeds.push(v);
        }
    }
    // Fall back to plain top-degree if separation ran out of nodes.
    for &v in &order {
        if seeds.len() == k {
            break;
        }
        if !seeds.contains(&v) {
            seeds.push(v);
        }
    }

    let mut frontiers: Vec<VecDeque<NodeId>> = Vec::with_capacity(k);
    let mut sizes = vec![0usize; k];
    for (p, &s) in seeds.iter().enumerate() {
        assignment[s as usize] = p as u32;
        sizes[p] += 1;
        frontiers.push(VecDeque::from([s]));
    }

    // Grow the smallest region one node at a time.
    while let Some(p) = (0..k).filter(|&p| !frontiers[p].is_empty()).min_by_key(|&p| sizes[p]) {
        let mut grew = false;
        while let Some(&v) = frontiers[p].front() {
            // Claim the first unassigned neighbor of the frontier head.
            let next =
                g.neighbors(v).iter().copied().find(|&u| assignment[u as usize] == UNASSIGNED);
            match next {
                Some(u) => {
                    assignment[u as usize] = p as u32;
                    sizes[p] += 1;
                    frontiers[p].push_back(u);
                    grew = true;
                    break;
                }
                None => {
                    frontiers[p].pop_front();
                }
            }
        }
        if !grew && frontiers.iter().all(VecDeque::is_empty) {
            break;
        }
    }

    // Round-robin any unreached nodes.
    let mut next_p = 0u32;
    for a in assignment.iter_mut() {
        if *a == UNASSIGNED {
            *a = next_p;
            next_p = (next_p + 1) % k as u32;
        }
    }
    Ok(assignment)
}

/// Number of directed edges whose endpoints live in different
/// partitions — the quantity partitioners minimize.
///
/// # Panics
///
/// Panics if `assignment.len() != g.num_nodes()`.
pub fn edge_cut(g: &Graph, assignment: &[u32]) -> usize {
    assert_eq!(assignment.len(), g.num_nodes(), "one partition id per node");
    g.edges().filter(|&(u, v)| assignment[u as usize] != assignment[v as usize]).count()
}

/// Balance factor: largest partition size divided by the ideal
/// `n / k` (1.0 is perfect balance). Returns 0 for empty input.
pub fn partition_balance(assignment: &[u32], k: usize) -> f64 {
    if assignment.is_empty() || k == 0 {
        return 0.0;
    }
    let mut sizes = vec![0usize; k];
    for &a in assignment {
        sizes[a as usize] += 1;
    }
    let max = *sizes.iter().max().expect("k > 0") as f64;
    max / (assignment.len() as f64 / k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, stochastic_block_model};

    #[test]
    fn partition_is_total_and_in_range() {
        let g = barabasi_albert(400, 3, 1).expect("gen");
        let parts = greedy_bfs_partition(&g, 5).expect("partition");
        assert_eq!(parts.len(), 400);
        assert!(parts.iter().all(|&p| p < 5));
        // Every partition non-empty.
        for p in 0..5u32 {
            assert!(parts.contains(&p), "partition {p} empty");
        }
    }

    #[test]
    fn partitions_are_reasonably_balanced() {
        let g = barabasi_albert(1000, 4, 2).expect("gen");
        let parts = greedy_bfs_partition(&g, 4).expect("partition");
        let balance = partition_balance(&parts, 4);
        assert!(balance < 1.5, "balance {balance}");
    }

    #[test]
    fn bfs_partition_beats_round_robin_on_clustered_graph() {
        let (g, _) = stochastic_block_model(&[200, 200, 200, 200], 0.05, 0.002, 3).expect("gen");
        let bfs = greedy_bfs_partition(&g, 4).expect("partition");
        let round_robin: Vec<u32> = (0..g.num_nodes() as u32).map(|v| v % 4).collect();
        assert!(
            edge_cut(&g, &bfs) < edge_cut(&g, &round_robin),
            "BFS cut {} >= round-robin cut {}",
            edge_cut(&g, &bfs),
            edge_cut(&g, &round_robin)
        );
    }

    #[test]
    fn single_partition_has_zero_cut() {
        let g = barabasi_albert(100, 3, 4).expect("gen");
        let parts = greedy_bfs_partition(&g, 1).expect("partition");
        assert_eq!(edge_cut(&g, &parts), 0);
        assert!((partition_balance(&parts, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_k_rejected() {
        let g = barabasi_albert(10, 2, 5).expect("gen");
        assert!(greedy_bfs_partition(&g, 0).is_err());
        assert!(greedy_bfs_partition(&g, 11).is_err());
    }

    #[test]
    fn isolated_nodes_still_assigned() {
        use crate::GraphBuilder;
        // Two connected nodes + two isolated ones.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        let g = b.symmetrize().build().expect("build");
        let parts = greedy_bfs_partition(&g, 2).expect("partition");
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|&p| p < 2));
    }
}
