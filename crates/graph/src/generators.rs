//! Seeded synthetic graph generators.
//!
//! All generators are deterministic given their seed, which keeps the
//! whole evaluation pipeline reproducible: dataset stand-ins, estimator
//! training sweeps, and benchmark tables regenerate identical graphs on
//! every run.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::GraphError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates an Erdős–Rényi graph with `num_nodes` nodes and expected
/// average (undirected) degree `avg_degree`, symmetrized.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `num_nodes == 0` or
/// `avg_degree < 0`.
pub fn erdos_renyi(num_nodes: usize, avg_degree: f64, seed: u64) -> Result<Graph, GraphError> {
    if num_nodes == 0 {
        return Err(GraphError::InvalidParameter("num_nodes must be > 0".into()));
    }
    if avg_degree < 0.0 {
        return Err(GraphError::InvalidParameter("avg_degree must be >= 0".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let num_edges = ((num_nodes as f64) * avg_degree / 2.0).round() as usize;
    let mut b = GraphBuilder::with_capacity(num_nodes, num_edges * 2);
    for _ in 0..num_edges {
        let u = rng.gen_range(0..num_nodes) as NodeId;
        let v = rng.gen_range(0..num_nodes) as NodeId;
        b.add_edge(u, v);
    }
    b.symmetrize().build()
}

/// Generates a Barabási–Albert preferential-attachment graph: each new
/// node attaches to `edges_per_node` existing nodes chosen proportional
/// to degree. Degree distribution follows a power law.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `num_nodes == 0` or
/// `edges_per_node == 0`.
pub fn barabasi_albert(
    num_nodes: usize,
    edges_per_node: usize,
    seed: u64,
) -> Result<Graph, GraphError> {
    if num_nodes == 0 || edges_per_node == 0 {
        return Err(GraphError::InvalidParameter(
            "num_nodes and edges_per_node must be > 0".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let m = edges_per_node;
    let seed_nodes = (m + 1).min(num_nodes);
    let mut b = GraphBuilder::with_capacity(num_nodes, num_nodes * m * 2);
    // Repeated-endpoints list: sampling uniformly from it is sampling
    // proportional to degree (the classic BA trick).
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(num_nodes * m * 2);
    for u in 0..seed_nodes {
        for v in 0..u {
            b.add_edge(u as NodeId, v as NodeId);
            endpoints.push(u as NodeId);
            endpoints.push(v as NodeId);
        }
    }
    if endpoints.is_empty() {
        // Single-node seed: bootstrap with a self-reference pool.
        endpoints.push(0);
    }
    for u in seed_nodes..num_nodes {
        for _ in 0..m {
            let v = endpoints[rng.gen_range(0..endpoints.len())];
            b.add_edge(u as NodeId, v);
            endpoints.push(u as NodeId);
            endpoints.push(v);
        }
    }
    b.symmetrize().build()
}

/// Parameters of an R-MAT generator: quadrant probabilities.
///
/// The four probabilities must be positive and sum to (approximately)
/// one; [`rmat`] normalizes them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability (hub-hub edges).
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
}

impl Default for RmatParams {
    /// The Graph500 defaults `(0.57, 0.19, 0.19, 0.05)`.
    fn default() -> Self {
        RmatParams { a: 0.57, b: 0.19, c: 0.19, d: 0.05 }
    }
}

/// Generates an R-MAT graph with `2^scale` nodes and
/// `edge_factor * 2^scale` undirected edges, symmetrized.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `scale == 0`,
/// `edge_factor == 0`, or any quadrant probability is non-positive.
pub fn rmat(
    scale: u32,
    edge_factor: usize,
    params: RmatParams,
    seed: u64,
) -> Result<Graph, GraphError> {
    if scale == 0 || edge_factor == 0 {
        return Err(GraphError::InvalidParameter("scale and edge_factor must be > 0".into()));
    }
    let RmatParams { a, b, c, d } = params;
    if a <= 0.0 || b <= 0.0 || c <= 0.0 || d <= 0.0 {
        return Err(GraphError::InvalidParameter(
            "rmat quadrant probabilities must be positive".into(),
        ));
    }
    let total = a + b + c + d;
    let (a, b, c) = (a / total, b / total, c / total);
    let n = 1usize << scale;
    let num_edges = edge_factor * n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, num_edges * 2);
    for _ in 0..num_edges {
        let (mut u, mut v) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let r: f64 = rng.gen();
            let bit = 1usize << level;
            if r < a {
                // top-left: no bits set
            } else if r < a + b {
                v |= bit;
            } else if r < a + b + c {
                u |= bit;
            } else {
                u |= bit;
                v |= bit;
            }
        }
        builder.add_edge(u as NodeId, v as NodeId);
    }
    builder.symmetrize().build()
}

/// Generates a stochastic block model graph.
///
/// `community_sizes` gives the size of each block; edges inside a block
/// appear with probability `p_in`, edges across blocks with `p_out`.
/// Uses expected-count sampling per block pair so it stays fast for
/// tens of thousands of nodes. Returns the graph and each node's
/// community id.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for empty community lists or
/// probabilities outside `[0, 1]`.
pub fn stochastic_block_model(
    community_sizes: &[usize],
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> Result<(Graph, Vec<u32>), GraphError> {
    if community_sizes.is_empty() || community_sizes.contains(&0) {
        return Err(GraphError::InvalidParameter(
            "community sizes must be non-empty and positive".into(),
        ));
    }
    for p in [p_in, p_out] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidParameter(format!("probability {p} outside [0, 1]")));
        }
    }
    let n: usize = community_sizes.iter().sum();
    let mut community = Vec::with_capacity(n);
    let mut starts = Vec::with_capacity(community_sizes.len());
    let mut cursor = 0usize;
    for (cid, &size) in community_sizes.iter().enumerate() {
        starts.push(cursor);
        community.extend(std::iter::repeat_n(cid as u32, size));
        cursor += size;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..community_sizes.len() {
        for j in i..community_sizes.len() {
            let (si, sj) = (community_sizes[i], community_sizes[j]);
            let pairs = if i == j { si * (si - 1) / 2 } else { si * sj };
            let p = if i == j { p_in } else { p_out };
            let expected = (pairs as f64 * p).round() as usize;
            for _ in 0..expected {
                let u = starts[i] + rng.gen_range(0..si);
                let v = starts[j] + rng.gen_range(0..sj);
                if u != v {
                    b.add_edge(u as NodeId, v as NodeId);
                }
            }
        }
    }
    let g = b.symmetrize().build()?;
    Ok((g, community))
}

/// Generates a community-aware preferential-attachment graph: the
/// hybrid used for the paper's dataset stand-ins.
///
/// Nodes arrive one at a time, are assigned round-robin to
/// `num_communities` communities, and attach `edges_per_node` edges.
/// Each edge endpoint is chosen preferentially by degree *within the
/// node's own community* with probability `1 - mixing`, and from the
/// whole graph with probability `mixing`. The result combines a
/// power-law degree distribution (cache-relevant skew) with community
/// structure (label-relevant clusters).
///
/// Returns the graph and each node's community id.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for zero nodes/communities/
/// edges or `mixing` outside `[0, 1]`.
pub fn community_preferential(
    num_nodes: usize,
    num_communities: usize,
    edges_per_node: usize,
    mixing: f64,
    seed: u64,
) -> Result<(Graph, Vec<u32>), GraphError> {
    if num_nodes == 0 || num_communities == 0 || edges_per_node == 0 {
        return Err(GraphError::InvalidParameter(
            "nodes, communities and edges_per_node must be > 0".into(),
        ));
    }
    if !(0.0..=1.0).contains(&mixing) {
        return Err(GraphError::InvalidParameter(format!("mixing {mixing} outside [0, 1]")));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let community: Vec<u32> = (0..num_nodes).map(|v| (v % num_communities) as u32).collect();
    let mut b = GraphBuilder::with_capacity(num_nodes, num_nodes * edges_per_node * 2);
    // Per-community and global degree-proportional endpoint pools.
    let mut pools: Vec<Vec<NodeId>> = vec![Vec::new(); num_communities];
    let mut global: Vec<NodeId> = Vec::new();
    for v in 0..num_nodes {
        let cid = community[v] as usize;
        for _ in 0..edges_per_node {
            let pick_global = rng.gen::<f64>() < mixing || pools[cid].is_empty();
            let target = if pick_global && !global.is_empty() {
                global[rng.gen_range(0..global.len())]
            } else if !pools[cid].is_empty() {
                pools[cid][rng.gen_range(0..pools[cid].len())]
            } else if !global.is_empty() {
                global[rng.gen_range(0..global.len())]
            } else {
                break; // very first node: nothing to attach to yet
            };
            if target as usize == v {
                continue;
            }
            b.add_edge(v as NodeId, target);
            let tcid = community[target as usize] as usize;
            pools[cid].push(v as NodeId);
            pools[tcid].push(target);
            global.push(v as NodeId);
            global.push(target);
        }
        // Ensure every node appears at least once in the pools so
        // isolated early nodes can still be chosen later.
        pools[cid].push(v as NodeId);
        global.push(v as NodeId);
    }
    let g = b.symmetrize().build()?;
    Ok((g, community))
}

/// Generates `count` random power-law graphs with node counts sampled
/// uniformly from `node_range`, used as "data enhancement" for the
/// performance estimator (paper §4.1).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if the range is empty or
/// `count == 0`.
pub fn power_law_suite(
    count: usize,
    node_range: std::ops::Range<usize>,
    seed: u64,
) -> Result<Vec<Graph>, GraphError> {
    if count == 0 || node_range.is_empty() {
        return Err(GraphError::InvalidParameter(
            "count must be > 0 and node_range non-empty".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graphs = Vec::with_capacity(count);
    for i in 0..count {
        let n = rng.gen_range(node_range.clone());
        let m = rng.gen_range(2..=6);
        graphs.push(barabasi_albert(n, m, seed.wrapping_add(1 + i as u64))?);
    }
    Ok(graphs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_degree_close_to_requested() {
        let g = erdos_renyi(2000, 10.0, 1).expect("gen");
        assert_eq!(g.num_nodes(), 2000);
        // Symmetrized: directed avg degree ~= undirected avg degree.
        assert!((g.avg_degree() - 10.0).abs() < 1.0, "avg {}", g.avg_degree());
    }

    #[test]
    fn erdos_renyi_rejects_bad_params() {
        assert!(erdos_renyi(0, 5.0, 1).is_err());
        assert!(erdos_renyi(10, -1.0, 1).is_err());
    }

    #[test]
    fn erdos_renyi_deterministic() {
        let a = erdos_renyi(500, 6.0, 42).expect("gen");
        let b = erdos_renyi(500, 6.0, 42).expect("gen");
        assert_eq!(a, b);
    }

    #[test]
    fn barabasi_albert_is_skewed() {
        let g = barabasi_albert(3000, 3, 7).expect("gen");
        // Power law: max degree far above average.
        assert!(g.max_degree() as f64 > 5.0 * g.avg_degree());
    }

    #[test]
    fn barabasi_albert_connected_enough() {
        let g = barabasi_albert(500, 2, 3).expect("gen");
        let isolated = g.node_ids().filter(|&v| g.degree(v) == 0).count();
        assert_eq!(isolated, 0);
    }

    #[test]
    fn rmat_produces_hubs() {
        let g = rmat(10, 8, RmatParams::default(), 5).expect("gen");
        assert_eq!(g.num_nodes(), 1024);
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    fn rmat_rejects_bad_params() {
        assert!(rmat(0, 8, RmatParams::default(), 5).is_err());
        let bad = RmatParams { a: 0.0, b: 0.3, c: 0.3, d: 0.4 };
        assert!(rmat(8, 8, bad, 5).is_err());
    }

    #[test]
    fn sbm_prefers_intra_community_edges() {
        let (g, comm) = stochastic_block_model(&[300, 300, 300], 0.05, 0.002, 11).expect("gen");
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            if comm[u as usize] == comm[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter * 2, "intra {intra} inter {inter}");
    }

    #[test]
    fn sbm_rejects_bad_probability() {
        assert!(stochastic_block_model(&[10], 1.5, 0.0, 1).is_err());
        assert!(stochastic_block_model(&[], 0.5, 0.0, 1).is_err());
    }

    #[test]
    fn community_preferential_has_skew_and_communities() {
        let (g, comm) = community_preferential(2000, 8, 4, 0.2, 13).expect("gen");
        assert_eq!(comm.len(), 2000);
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
        let mut intra = 0usize;
        let mut total = 0usize;
        for (u, v) in g.edges() {
            total += 1;
            if comm[u as usize] == comm[v as usize] {
                intra += 1;
            }
        }
        // With mixing 0.2 most edges should stay inside communities.
        assert!(intra as f64 > 0.55 * total as f64, "intra {intra}/{total}");
    }

    #[test]
    fn community_preferential_mixing_one_is_unclustered() {
        let (g, comm) = community_preferential(1500, 10, 4, 1.0, 17).expect("gen");
        let mut intra = 0usize;
        let mut total = 0usize;
        for (u, v) in g.edges() {
            total += 1;
            if comm[u as usize] == comm[v as usize] {
                intra += 1;
            }
        }
        // Fully mixed: intra fraction close to 1/num_communities.
        assert!((intra as f64 / total as f64) < 0.3);
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn power_law_suite_sizes_in_range() {
        let graphs = power_law_suite(5, 100..200, 3).expect("gen");
        assert_eq!(graphs.len(), 5);
        for g in &graphs {
            assert!((100..200).contains(&g.num_nodes()));
        }
    }

    #[test]
    fn power_law_suite_rejects_empty() {
        assert!(power_law_suite(0, 10..20, 1).is_err());
        assert!(power_law_suite(3, 10..10, 1).is_err());
    }
}
