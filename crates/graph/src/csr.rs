//! Immutable CSR (compressed sparse row) graph representation.

use crate::schedule::{AggSchedule, DegreeSchedule};
use crate::GraphError;
use std::sync::{Arc, OnceLock};

/// Identifier of a node inside a [`Graph`].
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`.
pub type NodeId = u32;

/// An immutable directed graph in CSR form.
///
/// Neighbor lists are sorted ascending, which makes `has_edge` a binary
/// search and keeps subgraph induction deterministic. Use
/// [`GraphBuilder`](crate::GraphBuilder) to construct one from an edge
/// list, or [`Graph::from_csr`] if you already hold validated CSR
/// arrays.
///
/// # Example
///
/// ```
/// use gnnav_graph::Graph;
///
/// # fn main() -> Result<(), gnnav_graph::GraphError> {
/// // A path 0 -> 1 -> 2 stored directly as CSR.
/// let g = Graph::from_csr(3, vec![0, 1, 2, 2], vec![1, 2])?;
/// assert_eq!(g.neighbors(0), &[1]);
/// assert_eq!(g.degree(2), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    num_nodes: usize,
    /// `offsets[v]..offsets[v+1]` indexes `targets` for node `v`.
    offsets: Vec<usize>,
    /// Flattened, per-node-sorted adjacency targets.
    targets: Vec<NodeId>,
    /// Lazily derived kernel data (degree norms, transpose); excluded
    /// from equality, shared by clones.
    caches: KernelCache,
}

/// Lazily computed per-graph data consumed by the NN kernels. Every
/// member is a pure function of the CSR arrays, so the cache is
/// invisible to equality and cheap (`Arc`) to clone.
#[derive(Default)]
struct KernelCache {
    gcn_norm: OnceLock<Arc<[f32]>>,
    transpose: OnceLock<Arc<TransposeCsr>>,
    schedule: OnceLock<Arc<AggSchedule>>,
}

impl Clone for KernelCache {
    fn clone(&self) -> Self {
        let out = KernelCache::default();
        if let Some(n) = self.gcn_norm.get() {
            let _ = out.gcn_norm.set(Arc::clone(n));
        }
        if let Some(t) = self.transpose.get() {
            let _ = out.transpose.set(Arc::clone(t));
        }
        if let Some(s) = self.schedule.get() {
            let _ = out.schedule.set(Arc::clone(s));
        }
        out
    }
}

impl PartialEq for KernelCache {
    fn eq(&self, _other: &Self) -> bool {
        // Derived data: two graphs with equal CSR arrays always have
        // equal caches once computed.
        true
    }
}

impl Eq for KernelCache {}

impl std::fmt::Debug for KernelCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelCache")
            .field("gcn_norm", &self.gcn_norm.get().map(|n| n.len()))
            .field("transpose", &self.transpose.get().is_some())
            .field("schedule", &self.schedule.get().is_some())
            .finish()
    }
}

/// The in-edge (transpose) view of a [`Graph`], with each in-edge
/// carrying the position of its forward twin in the graph's `targets`
/// array. Built once per graph, on demand, by counting sort — in-edge
/// source lists come out sorted ascending, which is what lets the
/// backward aggregation kernels run as deterministic per-row gathers
/// instead of scatters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransposeCsr {
    offsets: Vec<usize>,
    sources: Vec<NodeId>,
    /// `forward_edge[i]` is the index into the forward `targets` array
    /// of the edge whose transpose entry is `sources[i]`.
    forward_edge: Vec<usize>,
}

impl TransposeCsr {
    fn build(g: &Graph) -> Self {
        let n = g.num_nodes;
        let mut counts = vec![0usize; n + 1];
        for &u in &g.targets {
            counts[u as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut sources = vec![0 as NodeId; g.targets.len()];
        let mut forward_edge = vec![0usize; g.targets.len()];
        let mut cursor = counts;
        // v ascending keeps each in-edge list sorted by source.
        for v in 0..n {
            for e in g.offsets[v]..g.offsets[v + 1] {
                let u = g.targets[e] as usize;
                let slot = cursor[u];
                cursor[u] += 1;
                sources[slot] = v as NodeId;
                forward_edge[slot] = e;
            }
        }
        TransposeCsr { offsets, sources, forward_edge }
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Sources of the in-edges of `u`, sorted ascending.
    #[inline]
    pub fn in_sources(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.sources[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Forward-edge indices aligned with [`TransposeCsr::in_sources`]:
    /// entry `i` is the position in the graph's `targets()` array of
    /// the edge `in_sources(u)[i] -> u`.
    #[inline]
    pub fn in_forward_edges(&self, u: NodeId) -> &[usize] {
        let u = u as usize;
        &self.forward_edge[self.offsets[u]..self.offsets[u + 1]]
    }
}

impl Graph {
    /// Builds a graph from raw CSR arrays, validating every invariant.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] if `offsets` does not have
    /// length `num_nodes + 1`, is not monotone, does not start at 0 or
    /// end at `targets.len()`, if any target id is `>= num_nodes`, or
    /// if a neighbor list is not sorted ascending.
    pub fn from_csr(
        num_nodes: usize,
        offsets: Vec<usize>,
        targets: Vec<NodeId>,
    ) -> Result<Self, GraphError> {
        if offsets.len() != num_nodes + 1 {
            return Err(GraphError::InvalidCsr(format!(
                "offsets length {} != num_nodes + 1 = {}",
                offsets.len(),
                num_nodes + 1
            )));
        }
        if offsets.first() != Some(&0) {
            return Err(GraphError::InvalidCsr("offsets must start at 0".into()));
        }
        if *offsets.last().expect("non-empty") != targets.len() {
            return Err(GraphError::InvalidCsr(format!(
                "offsets must end at targets.len() = {}",
                targets.len()
            )));
        }
        for w in offsets.windows(2) {
            if w[0] > w[1] {
                return Err(GraphError::InvalidCsr("offsets must be monotone".into()));
            }
        }
        for (v, w) in offsets.windows(2).enumerate() {
            let row = &targets[w[0]..w[1]];
            for pair in row.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(GraphError::InvalidCsr(format!(
                        "neighbor list of node {v} not strictly ascending"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if (last as usize) >= num_nodes {
                    return Err(GraphError::InvalidCsr(format!(
                        "target {last} of node {v} out of range ({num_nodes} nodes)"
                    )));
                }
            }
        }
        Ok(Graph { num_nodes, offsets, targets, caches: KernelCache::default() })
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges (a symmetrized graph counts both
    /// directions).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbor slice of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the directed edge `u -> v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all node ids `0..num_nodes`.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes as NodeId
    }

    /// Iterator over all directed edges as `(source, target)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.node_ids().flat_map(move |v| self.neighbors(v).iter().map(move |&u| (v, u)))
    }

    /// Maximum out-degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes).map(|v| self.offsets[v + 1] - self.offsets[v]).max().unwrap_or(0)
    }

    /// Mean out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes as f64
        }
    }

    /// Raw CSR offsets (length `num_nodes + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw CSR targets.
    #[inline]
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Induces the subgraph on `nodes`, relabeling them `0..nodes.len()`
    /// in the order given.
    ///
    /// Returns the induced graph together with the mapping
    /// `local id -> original id` (which is simply `nodes` copied).
    /// Edges whose endpoint is outside `nodes` are dropped. Duplicate
    /// entries in `nodes` are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any entry of `nodes`
    /// is not a node of this graph, and [`GraphError::InvalidParameter`]
    /// if `nodes` contains duplicates.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> Result<(Graph, Vec<NodeId>), GraphError> {
        let mut local = vec![NodeId::MAX; self.num_nodes];
        for (i, &v) in nodes.iter().enumerate() {
            if (v as usize) >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange { node: v, num_nodes: self.num_nodes });
            }
            if local[v as usize] != NodeId::MAX {
                return Err(GraphError::InvalidParameter(format!(
                    "duplicate node {v} in subgraph node list"
                )));
            }
            local[v as usize] = i as NodeId;
        }
        let mut offsets = Vec::with_capacity(nodes.len() + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        let mut row: Vec<NodeId> = Vec::new();
        for &v in nodes {
            row.clear();
            for &u in self.neighbors(v) {
                let lu = local[u as usize];
                if lu != NodeId::MAX {
                    row.push(lu);
                }
            }
            row.sort_unstable();
            targets.extend_from_slice(&row);
            offsets.push(targets.len());
        }
        let g = Graph { num_nodes: nodes.len(), offsets, targets, caches: KernelCache::default() };
        Ok((g, nodes.to_vec()))
    }

    /// The symmetric-GCN inverse-sqrt degree normalization
    /// `1 / sqrt(degree(v) + 1)` for every node, computed once per
    /// graph and cached. The arithmetic matches what the GCN kernel
    /// historically recomputed per call, so cached and uncached runs
    /// are bitwise identical.
    pub fn gcn_inv_sqrt(&self) -> &[f32] {
        self.caches.gcn_norm.get_or_init(|| {
            (0..self.num_nodes as NodeId)
                .map(|v| 1.0 / ((self.degree(v) + 1) as f32).sqrt())
                .collect::<Vec<f32>>()
                .into()
        })
    }

    /// The in-edge (transpose) view of this graph, built lazily and
    /// cached. Backward aggregation kernels use it to turn per-edge
    /// scatters into per-row gathers.
    pub fn transpose_csr(&self) -> &TransposeCsr {
        self.caches.transpose.get_or_init(|| Arc::new(TransposeCsr::build(self)))
    }

    /// The degree-aware aggregation schedule for this graph
    /// (GNNAdvisor-style row grouping; see [`crate::schedule`]),
    /// built lazily and cached like the degree norms and transpose.
    /// Forward groups follow out-degrees; backward groups follow the
    /// transpose's in-degrees (building the schedule therefore also
    /// builds and caches the transpose).
    pub fn agg_schedule(&self) -> &AggSchedule {
        self.caches.schedule.get_or_init(|| {
            let t = self.transpose_csr();
            Arc::new(AggSchedule {
                fwd: DegreeSchedule::build(self.num_nodes, |v| self.degree(v as NodeId)),
                bwd: DegreeSchedule::build(self.num_nodes, |v| t.in_degree(v as NodeId)),
            })
        })
    }

    /// Total bytes of the CSR arrays; used by the memory cost model.
    pub fn storage_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_csr(3, vec![0, 1, 2, 2], vec![1, 2]).expect("valid")
    }

    #[test]
    fn from_csr_accepts_valid() {
        let g = path3();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[] as &[NodeId]);
    }

    #[test]
    fn from_csr_rejects_bad_offsets_len() {
        let e = Graph::from_csr(3, vec![0, 1, 2], vec![1, 2]).unwrap_err();
        assert!(matches!(e, GraphError::InvalidCsr(_)));
    }

    #[test]
    fn from_csr_rejects_nonmonotone_offsets() {
        let e = Graph::from_csr(2, vec![0, 2, 1], vec![1]).unwrap_err();
        assert!(matches!(e, GraphError::InvalidCsr(_)));
    }

    #[test]
    fn from_csr_rejects_out_of_range_target() {
        let e = Graph::from_csr(2, vec![0, 1, 1], vec![5]).unwrap_err();
        assert!(matches!(e, GraphError::InvalidCsr(_)));
    }

    #[test]
    fn from_csr_rejects_unsorted_rows() {
        let e = Graph::from_csr(3, vec![0, 2, 2, 2], vec![2, 1]).unwrap_err();
        assert!(matches!(e, GraphError::InvalidCsr(_)));
    }

    #[test]
    fn from_csr_rejects_duplicate_neighbors() {
        let e = Graph::from_csr(3, vec![0, 2, 2, 2], vec![1, 1]).unwrap_err();
        assert!(matches!(e, GraphError::InvalidCsr(_)));
    }

    #[test]
    fn has_edge_uses_sorted_lists() {
        let g = path3();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn edges_iterates_all_pairs() {
        let g = path3();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn degree_stats() {
        let g = path3();
        assert_eq!(g.max_degree(), 1);
        assert!((g.avg_degree() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_csr(0, vec![0], vec![]).expect("empty ok");
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        // Triangle 0-1-2 plus pendant 3, directed both ways.
        let g =
            Graph::from_csr(4, vec![0, 2, 4, 7, 8], vec![1, 2, 0, 2, 0, 1, 3, 2]).expect("valid");
        let (sub, map) = g.induced_subgraph(&[2, 0]).expect("induce");
        assert_eq!(map, vec![2, 0]);
        assert_eq!(sub.num_nodes(), 2);
        // Local 0 = original 2, local 1 = original 0. Edge 2->0 kept.
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 0));
        // Edge 2->3 dropped (3 not in set).
        assert_eq!(sub.degree(0), 1);
    }

    #[test]
    fn induced_subgraph_rejects_duplicates_and_oob() {
        let g = path3();
        assert!(matches!(g.induced_subgraph(&[0, 0]), Err(GraphError::InvalidParameter(_))));
        assert!(matches!(g.induced_subgraph(&[9]), Err(GraphError::NodeOutOfRange { .. })));
    }

    #[test]
    fn storage_bytes_positive() {
        assert!(path3().storage_bytes() > 0);
    }

    #[test]
    fn gcn_inv_sqrt_matches_degrees() {
        let g = path3();
        let norm = g.gcn_inv_sqrt();
        assert_eq!(norm.len(), 3);
        for v in 0..3u32 {
            let expect = 1.0 / ((g.degree(v) + 1) as f32).sqrt();
            assert_eq!(norm[v as usize], expect);
        }
        // Cached: second call returns the same slice.
        assert_eq!(norm.as_ptr(), g.gcn_inv_sqrt().as_ptr());
    }

    #[test]
    fn transpose_inverts_every_edge() {
        let g =
            Graph::from_csr(4, vec![0, 2, 4, 7, 8], vec![1, 2, 0, 2, 0, 1, 3, 2]).expect("valid");
        let t = g.transpose_csr();
        let mut seen = 0usize;
        for u in 0..4u32 {
            let sources = t.in_sources(u);
            assert_eq!(sources.len(), t.in_degree(u));
            // Sorted ascending sources, forward indices round-trip.
            assert!(sources.windows(2).all(|w| w[0] < w[1]));
            for (&v, &e) in sources.iter().zip(t.in_forward_edges(u)) {
                assert_eq!(g.targets()[e], u);
                assert!((g.offsets()[v as usize]..g.offsets()[v as usize + 1]).contains(&e));
                seen += 1;
            }
        }
        assert_eq!(seen, g.num_edges());
    }

    #[test]
    fn caches_survive_clone_and_ignore_equality() {
        let g = path3();
        let _ = g.gcn_inv_sqrt();
        let clone = g.clone();
        // Clone shares the computed cache (same Arc'd slice).
        assert_eq!(clone.gcn_inv_sqrt().as_ptr(), g.gcn_inv_sqrt().as_ptr());
        // Equality only looks at the CSR arrays.
        let fresh = path3();
        assert_eq!(fresh, g);
    }

    #[test]
    fn transpose_of_empty_graph() {
        let g = Graph::from_csr(0, vec![0], vec![]).expect("empty ok");
        let t = g.transpose_csr();
        assert_eq!(t.offsets.len(), 1);
        assert!(t.sources.is_empty());
    }
}
