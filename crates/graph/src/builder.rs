//! Edge-list accumulator that freezes into a validated [`Graph`].

use crate::csr::{Graph, NodeId};
use crate::GraphError;

/// Accumulates edges and builds a [`Graph`].
///
/// The builder sorts and deduplicates edges, drops self-loops unless
/// [`GraphBuilder::keep_self_loops`] is called, and can symmetrize the
/// edge set so the result behaves like an undirected graph.
///
/// # Example
///
/// ```
/// use gnnav_graph::GraphBuilder;
///
/// # fn main() -> Result<(), gnnav_graph::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(0, 1); // duplicate, removed
/// b.add_edge(1, 1); // self-loop, dropped by default
/// let g = b.symmetrize().build()?;
/// assert_eq!(g.num_edges(), 2); // 0->1 and 1->0
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
    symmetrize: bool,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder { num_nodes, edges: Vec::new(), symmetrize: false, keep_self_loops: false }
    }

    /// Creates a builder with capacity for `edges` edges.
    pub fn with_capacity(num_nodes: usize, edges: usize) -> Self {
        let mut b = Self::new(num_nodes);
        b.edges.reserve(edges);
        b
    }

    /// Adds the directed edge `u -> v`. Out-of-range endpoints are
    /// detected at [`build`](Self::build) time.
    #[inline]
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Adds every edge from an iterator of `(u, v)` pairs.
    pub fn add_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: I) -> &mut Self {
        self.edges.extend(iter);
        self
    }

    /// Requests that each edge `u -> v` also produce `v -> u`.
    pub fn symmetrize(&mut self) -> &mut Self {
        self.symmetrize = true;
        self
    }

    /// Keeps self-loops instead of dropping them (the default).
    pub fn keep_self_loops(&mut self) -> &mut Self {
        self.keep_self_loops = true;
        self
    }

    /// Number of raw (pre-dedup) edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Freezes the accumulated edges into a [`Graph`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any endpoint is
    /// `>= num_nodes`.
    pub fn build(&self) -> Result<Graph, GraphError> {
        let n = self.num_nodes;
        for &(u, v) in &self.edges {
            for id in [u, v] {
                if (id as usize) >= n {
                    return Err(GraphError::NodeOutOfRange { node: id, num_nodes: n });
                }
            }
        }
        let mut edges: Vec<(NodeId, NodeId)> =
            Vec::with_capacity(self.edges.len() * if self.symmetrize { 2 } else { 1 });
        for &(u, v) in &self.edges {
            if u == v && !self.keep_self_loops {
                continue;
            }
            edges.push((u, v));
            if self.symmetrize && u != v {
                edges.push((v, u));
            }
        }
        edges.sort_unstable();
        edges.dedup();

        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in &edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<NodeId> = edges.iter().map(|&(_, v)| v).collect();
        Graph::from_csr(n, offsets, targets)
    }
}

impl FromIterator<(NodeId, NodeId)> for GraphBuilder {
    /// Collects edges into a builder sized by the largest endpoint.
    fn from_iter<I: IntoIterator<Item = (NodeId, NodeId)>>(iter: I) -> Self {
        let edges: Vec<(NodeId, NodeId)> = iter.into_iter().collect();
        let n = edges.iter().map(|&(u, v)| u.max(v) as usize + 1).max().unwrap_or(0);
        let mut b = GraphBuilder::new(n);
        b.edges = edges;
        b
    }
}

impl Extend<(NodeId, NodeId)> for GraphBuilder {
    fn extend<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: I) {
        self.edges.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_dedup_csr() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 0).add_edge(0, 2).add_edge(0, 1).add_edge(0, 1);
        let g = b.build().expect("build");
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn symmetrize_adds_reverse_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).symmetrize();
        let g = b.build().expect("build");
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
    }

    #[test]
    fn self_loops_dropped_by_default_kept_on_request() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 0);
        assert_eq!(b.build().expect("build").num_edges(), 0);
        b.keep_self_loops();
        assert_eq!(b.build().expect("build").num_edges(), 1);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
        assert!(matches!(b.build(), Err(GraphError::NodeOutOfRange { node: 5, .. })));
    }

    #[test]
    fn from_iterator_sizes_by_max_endpoint() {
        let b: GraphBuilder = vec![(0, 4), (2, 1)].into_iter().collect();
        let g = b.build().expect("build");
        assert_eq!(g.num_nodes(), 5);
    }

    #[test]
    fn extend_appends() {
        let mut b = GraphBuilder::new(3);
        b.extend(vec![(0, 1), (1, 2)]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(4).build().expect("build");
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 0);
    }
}
