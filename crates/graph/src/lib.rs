//! Graph substrate for the GNNavigator reproduction.
//!
//! This crate provides everything graph-shaped that the rest of the
//! workspace builds on:
//!
//! - [`Graph`]: an immutable, validated CSR (compressed sparse row)
//!   adjacency structure with cheap neighbor queries and subgraph
//!   induction.
//! - [`GraphBuilder`]: an edge-list accumulator that sorts,
//!   deduplicates, and optionally symmetrizes edges before freezing
//!   them into a [`Graph`].
//! - [`generators`]: seeded synthetic graph generators (Erdős–Rényi,
//!   Barabási–Albert, R-MAT, stochastic block model, and a
//!   community-aware preferential-attachment hybrid used for the
//!   dataset stand-ins).
//! - [`datasets`]: deterministic stand-ins for the graphs used in the
//!   paper's evaluation (ogbn-arxiv, ogbn-products, Reddit, Reddit2),
//!   bundling graph + features + labels + splits.
//! - [`stats`]: degree and community statistics consumed by the
//!   gray-box accuracy estimator (Eq. 11 of the paper).
//!
//! # Example
//!
//! ```
//! use gnnav_graph::{GraphBuilder};
//!
//! # fn main() -> Result<(), gnnav_graph::GraphError> {
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 3);
//! let g = b.symmetrize().build()?;
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.degree(1), 2);
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod features;
pub mod generators;
pub mod io;
pub mod partition;
pub mod schedule;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::{Graph, NodeId};
pub use datasets::{Dataset, DatasetId, Split};
pub use features::{FeatureSpec, Features};
pub use schedule::{AggGroup, AggSchedule, DegreeSchedule};
pub use stats::{DegreeBuckets, DegreeStats, GraphStats};

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or slicing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A CSR invariant was violated (offsets not monotone, lengths
    /// inconsistent, or a target out of range).
    InvalidCsr(String),
    /// A node id exceeded the number of nodes in the graph.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes in the graph.
        num_nodes: usize,
    },
    /// A parameter to a generator or builder was invalid.
    InvalidParameter(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidCsr(msg) => write!(f, "invalid CSR structure: {msg}"),
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node id {node} out of range for graph with {num_nodes} nodes")
            }
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange { node: 7, num_nodes: 3 };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('3'));
        assert!(s.starts_with("node id"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
