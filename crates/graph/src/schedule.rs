//! Degree-aware aggregation schedules (GNNAdvisor-style neighbor
//! grouping).
//!
//! CSR aggregation kernels are row-parallel, but on power-law graphs
//! uniform row chunks are badly balanced: one hub row can carry more
//! work than a thousand leaf rows. The schedule built here groups
//! contiguous rows by degree instead:
//!
//! - a node whose work (`degree + 1`, counting the self term) reaches
//!   [`HEAVY_DEGREE`] becomes a **heavy** single-node group, which the
//!   kernels may additionally split across the feature dimension;
//! - lighter nodes are batched into groups of roughly
//!   [`LIGHT_GROUP_WORK`] work units, so tiny rows amortize their
//!   scheduling overhead.
//!
//! Groups are contiguous, ascending, and a pure function of the degree
//! sequence — never of the thread count. Workers pick up whole groups
//! (weighted by [`AggGroup::work`]), and each group's inner loop is the
//! identical serial code in every configuration, so kernels scheduled
//! this way keep the parallel-vs-serial bitwise-identity property.
//!
//! Forward aggregations gather over out-neighbors and backward
//! aggregations gather over the transpose's in-sources, so the two
//! passes see different degree sequences; [`AggSchedule`] carries one
//! grouping for each. The whole thing is computed once per
//! [`Graph`](crate::Graph) and cached alongside the degree-norm and
//! transpose caches.

use crate::csr::NodeId;

/// Work threshold (in `degree + 1` units) above which a node gets its
/// own schedule group. 64 matches GNNAdvisor's neighbor-group sizing:
/// a row this wide saturates a worker's inner loop on its own.
pub const HEAVY_DEGREE: usize = 64;

/// Target total work units per light (batched) group.
pub const LIGHT_GROUP_WORK: usize = 256;

/// A contiguous run of rows `start..end` scheduled as one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggGroup {
    /// First row of the group.
    pub start: NodeId,
    /// One past the last row.
    pub end: NodeId,
    /// Total work units (`Σ degree + 1`) over the rows.
    pub work: u64,
    /// Whether this is a single high-degree row that kernels may
    /// further split across the feature dimension.
    pub heavy: bool,
}

impl AggGroup {
    /// Number of rows in the group.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the group covers no rows (never produced by
    /// [`DegreeSchedule::build`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Degree-bucketed grouping of the rows `0..n` for one aggregation
/// direction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DegreeSchedule {
    /// Contiguous ascending groups covering every row exactly once.
    pub groups: Vec<AggGroup>,
    /// Total work units across all groups.
    pub total_work: u64,
    /// Number of heavy (single hub row) groups.
    pub heavy_groups: usize,
}

impl DegreeSchedule {
    /// Builds the grouping for `n` rows where row `v` has
    /// `degree(v)` neighbors to gather (the `+ 1` self/bookkeeping
    /// unit is added here).
    pub fn build(n: usize, degree: impl Fn(usize) -> usize) -> Self {
        let mut groups = Vec::new();
        let mut total_work = 0u64;
        let mut heavy_groups = 0usize;
        let mut run_start = 0usize;
        let mut run_work = 0u64;
        let flush_light = |groups: &mut Vec<AggGroup>, start: usize, end: usize, work: u64| {
            if end > start {
                groups.push(AggGroup {
                    start: start as NodeId,
                    end: end as NodeId,
                    work,
                    heavy: false,
                });
            }
        };
        for v in 0..n {
            let work = degree(v) as u64 + 1;
            total_work += work;
            if work >= HEAVY_DEGREE as u64 {
                flush_light(&mut groups, run_start, v, run_work);
                groups.push(AggGroup {
                    start: v as NodeId,
                    end: (v + 1) as NodeId,
                    work,
                    heavy: true,
                });
                heavy_groups += 1;
                run_start = v + 1;
                run_work = 0;
            } else {
                run_work += work;
                if run_work >= LIGHT_GROUP_WORK as u64 {
                    flush_light(&mut groups, run_start, v + 1, run_work);
                    run_start = v + 1;
                    run_work = 0;
                }
            }
        }
        flush_light(&mut groups, run_start, n, run_work);
        DegreeSchedule { groups, total_work, heavy_groups }
    }
}

/// The cached per-graph pair of degree schedules: forward kernels
/// gather over out-neighbors, backward kernels gather over the
/// transpose's in-sources.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AggSchedule {
    /// Grouping of rows by *out*-degree (forward aggregation).
    pub fwd: DegreeSchedule,
    /// Grouping of rows by *in*-degree (backward/transpose
    /// aggregation).
    pub bwd: DegreeSchedule,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degrees(seq: &[usize]) -> DegreeSchedule {
        DegreeSchedule::build(seq.len(), |v| seq[v])
    }

    fn assert_covers(s: &DegreeSchedule, n: usize) {
        let mut next = 0 as NodeId;
        for g in &s.groups {
            assert_eq!(g.start, next, "groups must be contiguous");
            assert!(g.end > g.start, "no empty groups");
            next = g.end;
        }
        assert_eq!(next as usize, n, "groups must cover every row");
        let work: u64 = s.groups.iter().map(|g| g.work).sum();
        assert_eq!(work, s.total_work);
    }

    #[test]
    fn hub_rows_become_single_groups() {
        let mut seq = vec![2usize; 100];
        seq[10] = 500;
        seq[40] = HEAVY_DEGREE; // boundary: deg + 1 > threshold
        let s = degrees(&seq);
        assert_covers(&s, 100);
        assert_eq!(s.heavy_groups, 2);
        let heavy: Vec<_> = s.groups.iter().filter(|g| g.heavy).collect();
        assert_eq!(heavy[0].start, 10);
        assert_eq!(heavy[0].len(), 1);
        assert_eq!(heavy[0].work, 501);
        assert_eq!(heavy[1].start, 40);
    }

    #[test]
    fn light_rows_batch_to_target_work() {
        let s = degrees(&vec![3usize; 1000]); // 4 work units per row
        assert_covers(&s, 1000);
        assert_eq!(s.heavy_groups, 0);
        for g in &s.groups {
            assert!(!g.heavy);
            assert!(g.work >= LIGHT_GROUP_WORK as u64 || g.end == 1000);
        }
    }

    #[test]
    fn exact_threshold_degree_is_heavy() {
        // work = degree + 1, so degree HEAVY_DEGREE - 1 is the first
        // heavy degree.
        let s = degrees(&[HEAVY_DEGREE - 1]);
        assert_eq!(s.heavy_groups, 1);
        let s = degrees(&[HEAVY_DEGREE - 2]);
        assert_eq!(s.heavy_groups, 0);
    }

    #[test]
    fn empty_and_isolated_rows() {
        let s = degrees(&[]);
        assert!(s.groups.is_empty());
        assert_eq!(s.total_work, 0);
        // All-isolated graph: one work unit per row, all light.
        let s = degrees(&[0usize; 7]);
        assert_covers(&s, 7);
        assert_eq!(s.heavy_groups, 0);
        assert_eq!(s.total_work, 7);
        assert!(!s.groups[0].is_empty());
    }

    #[test]
    fn schedule_is_pure_function_of_degrees() {
        let seq: Vec<usize> = (0..300).map(|v| (v * 7) % 90).collect();
        assert_eq!(degrees(&seq), degrees(&seq));
        assert_covers(&degrees(&seq), 300);
    }
}
