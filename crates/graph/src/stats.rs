//! Degree and structure statistics.
//!
//! The gray-box accuracy estimator (Eq. 11 of the paper) conditions on
//! `Deg(G_i)` and `Deg(G)` — degree summaries of the mini-batch and the
//! full graph — so these summaries are first-class values here.

use crate::csr::{Graph, NodeId};

/// Summary of a degree distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DegreeStats {
    /// Mean degree.
    pub mean: f64,
    /// Maximum degree.
    pub max: usize,
    /// Median (p50) degree.
    pub p50: usize,
    /// 90th-percentile degree.
    pub p90: usize,
    /// 99th-percentile degree.
    pub p99: usize,
    /// Skew proxy: `max / mean` (1 for regular graphs, large for
    /// power-law graphs). Zero when the graph has no edges.
    pub skew: f64,
}

impl DegreeStats {
    /// Computes degree statistics over all nodes of `g`.
    pub fn of_graph(g: &Graph) -> Self {
        let degrees: Vec<usize> = (0..g.num_nodes() as NodeId).map(|v| g.degree(v)).collect();
        Self::of_degrees(degrees)
    }

    /// Computes degree statistics of `nodes` *within* `g` (their degree
    /// in the full graph — the quantity Eq. 11 uses to compare a
    /// mini-batch against the whole graph).
    pub fn of_nodes(g: &Graph, nodes: &[NodeId]) -> Self {
        let degrees: Vec<usize> = nodes.iter().map(|&v| g.degree(v)).collect();
        Self::of_degrees(degrees)
    }

    fn of_degrees(mut degrees: Vec<usize>) -> Self {
        if degrees.is_empty() {
            return DegreeStats::default();
        }
        degrees.sort_unstable();
        let n = degrees.len();
        let sum: usize = degrees.iter().sum();
        let mean = sum as f64 / n as f64;
        let pct = |p: f64| degrees[(((n - 1) as f64) * p).round() as usize];
        let max = *degrees.last().expect("non-empty");
        DegreeStats {
            mean,
            max,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            skew: if mean > 0.0 { max as f64 / mean } else { 0.0 },
        }
    }
}

/// Whole-graph structural statistics used as estimator features.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Degree summary.
    pub degrees: DegreeStats,
    /// Fraction of edges whose endpoints share a community (when
    /// community labels are known); `None` otherwise.
    pub intra_community_fraction: Option<f64>,
}

impl GraphStats {
    /// Computes stats for `g` without community information.
    pub fn of_graph(g: &Graph) -> Self {
        GraphStats {
            num_nodes: g.num_nodes(),
            num_edges: g.num_edges(),
            degrees: DegreeStats::of_graph(g),
            intra_community_fraction: None,
        }
    }

    /// Computes stats for `g` including the intra-community edge
    /// fraction under `communities` (one id per node).
    ///
    /// # Panics
    ///
    /// Panics if `communities.len() != g.num_nodes()`.
    pub fn with_communities(g: &Graph, communities: &[u32]) -> Self {
        assert_eq!(communities.len(), g.num_nodes(), "one community id per node required");
        let mut intra = 0usize;
        let total = g.num_edges();
        for (u, v) in g.edges() {
            if communities[u as usize] == communities[v as usize] {
                intra += 1;
            }
        }
        let frac = if total > 0 { Some(intra as f64 / total as f64) } else { None };
        GraphStats {
            num_nodes: g.num_nodes(),
            num_edges: g.num_edges(),
            degrees: DegreeStats::of_graph(g),
            intra_community_fraction: frac,
        }
    }
}

/// Power-of-two degree histogram: bucket 0 counts isolated nodes,
/// bucket `i >= 1` counts nodes with degree in `[2^(i-1), 2^i)`.
///
/// This is the summary the degree-aware aggregation schedule
/// ([`crate::schedule`]) is keyed on: the split between buckets below
/// and above the heavy-row threshold tells how much of a graph's work
/// sits in hub rows that need splitting versus leaf rows that need
/// batching.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DegreeBuckets {
    /// `counts[0]` = isolated nodes; `counts[i]` = nodes with degree
    /// in `[2^(i-1), 2^i)`.
    pub counts: Vec<usize>,
}

impl DegreeBuckets {
    /// Buckets the out-degrees of every node of `g`.
    pub fn of_graph(g: &Graph) -> Self {
        let mut counts = Vec::new();
        for v in 0..g.num_nodes() as NodeId {
            let d = g.degree(v);
            let bucket = if d == 0 { 0 } else { d.ilog2() as usize + 1 };
            if counts.len() <= bucket {
                counts.resize(bucket + 1, 0);
            }
            counts[bucket] += 1;
        }
        DegreeBuckets { counts }
    }

    /// Number of nodes with degree `>= threshold` (the heavy-row
    /// population for a schedule keyed at `threshold`). Exact, not
    /// bucket-rounded, when `threshold` is a power of two.
    pub fn nodes_at_or_above(&self, threshold: usize) -> usize {
        if threshold == 0 {
            return self.counts.iter().sum();
        }
        let first_full = threshold.next_power_of_two().ilog2() as usize + 1;
        self.counts.iter().skip(first_full).sum()
    }
}

/// Returns node ids sorted by descending degree — the order PaGraph's
/// static cache fills device memory with (hot vertices first).
pub fn nodes_by_degree_desc(g: &Graph) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
    ids.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::barabasi_albert;
    use crate::GraphBuilder;

    fn star(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for v in 1..n as NodeId {
            b.add_edge(0, v);
        }
        b.symmetrize().build().expect("build")
    }

    #[test]
    fn degree_stats_of_star() {
        let g = star(11);
        let s = DegreeStats::of_graph(&g);
        assert_eq!(s.max, 10);
        assert_eq!(s.p50, 1);
        assert!((s.mean - 20.0 / 11.0).abs() < 1e-9);
        assert!(s.skew > 5.0);
    }

    #[test]
    fn degree_stats_of_nodes_subset() {
        let g = star(11);
        let hub = DegreeStats::of_nodes(&g, &[0]);
        assert_eq!(hub.mean, 10.0);
        let leaves = DegreeStats::of_nodes(&g, &[1, 2, 3]);
        assert_eq!(leaves.mean, 1.0);
    }

    #[test]
    fn degree_stats_empty_input() {
        let g = star(3);
        assert_eq!(DegreeStats::of_nodes(&g, &[]), DegreeStats::default());
    }

    #[test]
    fn power_law_skew_detected() {
        let g = barabasi_albert(2000, 3, 1).expect("gen");
        let s = DegreeStats::of_graph(&g);
        assert!(s.skew > 4.0, "skew {}", s.skew);
        assert!(s.p99 > s.p50);
    }

    #[test]
    fn graph_stats_with_communities() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(2, 3).add_edge(0, 2);
        let g = b.build().expect("build");
        let stats = GraphStats::with_communities(&g, &[0, 0, 1, 1]);
        let f = stats.intra_community_fraction.expect("has edges");
        assert!((f - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn degree_buckets_histogram() {
        // Star with 10 leaves: hub degree 10 (bucket 4), leaves
        // degree 1 (bucket 1).
        let g = star(11);
        let b = DegreeBuckets::of_graph(&g);
        assert_eq!(b.counts[1], 10);
        assert_eq!(b.counts[4], 1);
        assert_eq!(b.counts.iter().sum::<usize>(), 11);
        assert_eq!(b.nodes_at_or_above(8), 1);
        assert_eq!(b.nodes_at_or_above(1), 11);
        assert_eq!(b.nodes_at_or_above(0), 11);
        // Isolated nodes land in bucket 0.
        let iso = GraphBuilder::new(3).build().expect("build");
        assert_eq!(DegreeBuckets::of_graph(&iso).counts, vec![3]);
        assert_eq!(DegreeBuckets::of_graph(&iso).nodes_at_or_above(1), 0);
    }

    #[test]
    fn nodes_by_degree_desc_orders_hub_first() {
        let g = star(5);
        let order = nodes_by_degree_desc(&g);
        assert_eq!(order[0], 0);
    }
}
