//! Node feature and label synthesis.
//!
//! Features are drawn around per-class Gaussian centroids so that a GNN
//! can genuinely learn the labels; the `noise` level controls how hard
//! the task is (and therefore the attainable accuracy of a trained
//! model, which is what the dataset stand-ins tune to match the paper's
//! accuracy ranges).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification for synthesizing node features and labels.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureSpec {
    /// Feature dimensionality `n_attr`.
    pub dim: usize,
    /// Number of label classes.
    pub num_classes: usize,
    /// Standard deviation of per-node noise around the class centroid.
    /// Larger values make the task harder.
    pub noise: f32,
    /// Fraction of nodes whose label is flipped to a random class
    /// (irreducible error, caps attainable accuracy).
    pub label_noise: f32,
}

impl FeatureSpec {
    /// Creates a spec with the given dimensionality and class count,
    /// moderate feature noise, and no label noise.
    pub fn new(dim: usize, num_classes: usize) -> Self {
        FeatureSpec { dim, num_classes, noise: 1.0, label_noise: 0.0 }
    }

    /// Sets the feature noise level.
    pub fn with_noise(mut self, noise: f32) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the label-flip fraction.
    pub fn with_label_noise(mut self, label_noise: f32) -> Self {
        self.label_noise = label_noise;
        self
    }
}

/// Dense node features plus labels.
///
/// Row `v` of [`Features::matrix`] is the `dim`-dimensional feature of
/// node `v`; [`Features::labels`] holds one class id per node.
#[derive(Debug, Clone, PartialEq)]
pub struct Features {
    dim: usize,
    num_classes: usize,
    data: Vec<f32>,
    labels: Vec<u16>,
}

impl Features {
    /// Synthesizes features for `communities.len()` nodes.
    ///
    /// Each community maps to a class (`community % num_classes`); the
    /// node's feature is the class centroid plus Gaussian noise.
    ///
    /// # Panics
    ///
    /// Panics if `spec.num_classes == 0` or `spec.dim == 0`.
    pub fn synthesize(communities: &[u32], spec: &FeatureSpec, seed: u64) -> Self {
        assert!(spec.num_classes > 0, "num_classes must be > 0");
        assert!(spec.dim > 0, "dim must be > 0");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = communities.len();
        // Class centroids: unit-ish random vectors scaled to separate.
        let mut centroids = vec![0.0f32; spec.num_classes * spec.dim];
        for x in centroids.iter_mut() {
            *x = gaussian(&mut rng) * 2.0;
        }
        let mut data = vec![0.0f32; n * spec.dim];
        let mut labels = vec![0u16; n];
        for v in 0..n {
            let class = (communities[v] as usize) % spec.num_classes;
            // Label noise flips only the *label*: the feature stays at
            // the community centroid, so flipped nodes are genuinely
            // irreducible errors that cap attainable accuracy.
            labels[v] = if spec.label_noise > 0.0 && rng.gen::<f32>() < spec.label_noise {
                rng.gen_range(0..spec.num_classes) as u16
            } else {
                class as u16
            };
            let c = &centroids[class * spec.dim..(class + 1) * spec.dim];
            let row = &mut data[v * spec.dim..(v + 1) * spec.dim];
            for (r, &cv) in row.iter_mut().zip(c) {
                *r = cv + gaussian(&mut rng) * spec.noise;
            }
        }
        Features { dim: spec.dim, num_classes: spec.num_classes, data, labels }
    }

    /// Feature dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of label classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Feature row of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn row(&self, v: u32) -> &[f32] {
        let v = v as usize;
        &self.data[v * self.dim..(v + 1) * self.dim]
    }

    /// All features as a row-major `num_nodes x dim` slice.
    #[inline]
    pub fn matrix(&self) -> &[f32] {
        &self.data
    }

    /// Per-node class labels.
    #[inline]
    pub fn labels(&self) -> &[u16] {
        &self.labels
    }

    /// Bytes of one node's feature row at 4 bytes per attribute; the
    /// transmission cost model multiplies this by miss counts.
    #[inline]
    pub fn row_bytes(&self) -> usize {
        self.dim * std::mem::size_of::<f32>()
    }

    /// Gathers the feature rows of `nodes` into a dense row-major
    /// matrix (`nodes.len() x dim`), the layout the NN substrate
    /// consumes for a mini-batch.
    pub fn gather(&self, nodes: &[u32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(nodes.len() * self.dim);
        for &v in nodes {
            out.extend_from_slice(self.row(v));
        }
        out
    }

    /// Gathers the labels of `nodes`.
    pub fn gather_labels(&self, nodes: &[u32]) -> Vec<u16> {
        nodes.iter().map(|&v| self.labels[v as usize]).collect()
    }

    /// Like [`Features::gather`], but reuses `out` (cleared first) so
    /// steady-state batch loops allocate nothing.
    pub fn gather_into(&self, nodes: &[u32], out: &mut Vec<f32>) {
        out.clear();
        out.reserve(nodes.len() * self.dim);
        for &v in nodes {
            out.extend_from_slice(self.row(v));
        }
    }

    /// Like [`Features::gather_labels`], but reuses `out`.
    pub fn gather_labels_into(&self, nodes: &[u32], out: &mut Vec<u16>) {
        out.clear();
        out.extend(nodes.iter().map(|&v| self.labels[v as usize]));
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen::<f32>().max(1e-7);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FeatureSpec {
        FeatureSpec::new(8, 4).with_noise(0.5)
    }

    #[test]
    fn synthesize_shapes() {
        let comm: Vec<u32> = (0..100).map(|v| v % 4).collect();
        let f = Features::synthesize(&comm, &spec(), 1);
        assert_eq!(f.num_nodes(), 100);
        assert_eq!(f.dim(), 8);
        assert_eq!(f.matrix().len(), 800);
        assert_eq!(f.labels().len(), 100);
    }

    #[test]
    fn labels_follow_communities_without_noise() {
        let comm: Vec<u32> = (0..40).map(|v| v % 4).collect();
        let f = Features::synthesize(&comm, &spec(), 2);
        for v in 0..40u32 {
            assert_eq!(f.labels()[v as usize] as u32, comm[v as usize] % 4);
        }
    }

    #[test]
    fn label_noise_flips_some() {
        let comm: Vec<u32> = vec![0; 2000];
        let f = Features::synthesize(&comm, &spec().with_label_noise(0.3), 3);
        let flipped = f.labels().iter().filter(|&&l| l != 0).count();
        // ~30% * 3/4 should differ from class 0.
        assert!(flipped > 200 && flipped < 800, "flipped = {flipped}");
    }

    #[test]
    fn same_class_features_cluster() {
        let comm: Vec<u32> = (0..200).map(|v| v % 2).collect();
        let f = Features::synthesize(&comm, &FeatureSpec::new(16, 2).with_noise(0.1), 4);
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f32>().sqrt()
        };
        // Nodes 0 and 2 share a class; 0 and 1 do not.
        let same = dist(f.row(0), f.row(2));
        let diff = dist(f.row(0), f.row(1));
        assert!(same < diff, "same {same} diff {diff}");
    }

    #[test]
    fn gather_concatenates_rows() {
        let comm: Vec<u32> = (0..10).collect();
        let f = Features::synthesize(&comm, &spec(), 5);
        let g = f.gather(&[3, 7]);
        assert_eq!(&g[0..8], f.row(3));
        assert_eq!(&g[8..16], f.row(7));
        assert_eq!(f.gather_labels(&[3, 7]), vec![f.labels()[3], f.labels()[7]]);
    }

    #[test]
    fn deterministic_given_seed() {
        let comm: Vec<u32> = (0..50).map(|v| v % 3).collect();
        let a = Features::synthesize(&comm, &spec(), 9);
        let b = Features::synthesize(&comm, &spec(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn row_bytes_counts_f32() {
        let comm = vec![0u32; 4];
        let f = Features::synthesize(&comm, &spec(), 6);
        assert_eq!(f.row_bytes(), 32);
    }
}
