//! Offline subset of `crossbeam`: `crossbeam::thread::scope`.
//!
//! Backed by `std::thread::scope` (stable since 1.63). Matches the
//! crossbeam calling convention the workspace uses: the closure
//! receives a scope handle, `spawn` passes the scope to the child
//! closure, and `scope` returns `Err` (instead of propagating the
//! panic) when any child panicked.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle for spawning threads tied to the enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope
        /// handle (crossbeam convention) so it can spawn further work.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; joins all spawned threads before
    /// returning. A panic in any child is captured and returned as
    /// `Err` rather than unwinding through the caller.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_joins_and_collects() {
            let total = std::sync::atomic::AtomicUsize::new(0);
            super::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| {
                        total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    });
                }
            })
            .expect("no panics");
            assert_eq!(total.into_inner(), 4);
        }

        #[test]
        fn child_panic_becomes_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
