//! Bitwise identity of the parallel kernels across thread counts.
//!
//! Every parallel kernel in the NN substrate partitions *output*
//! elements over workers while keeping the per-element accumulation
//! order identical to the serial loop. That makes results bitwise
//! reproducible regardless of pool width — the property the
//! determinism suite and `(seed, plan)` fault replay depend on. These
//! tests pin it down: each kernel is run under
//! [`gnnav_par::with_thread_limit`] at widths 1/2/4/8 and the outputs
//! are compared bit-for-bit against the single-threaded reference.
//!
//! Thread limits above the core count still exercise real worker
//! threads (the limit overrides the hardware budget), so this suite is
//! meaningful even on single-core CI runners.

use gnnav_graph::{Graph, GraphBuilder};
use gnnav_nn::layers::{gcn_aggregate, mean_aggregate, mean_aggregate_backward};
use gnnav_nn::tensor::Matrix;
use gnnav_nn::{Adam, GnnModel, ModelKind};
use proptest::prelude::*;

const WIDTHS: [usize; 3] = [2, 4, 8];

fn assert_bits_eq(label: &str, a: &Matrix, b: &Matrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.rows(), b.rows(), "{} rows", label);
    prop_assert_eq!(a.cols(), b.cols(), "{} cols", label);
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        prop_assert!(
            x.to_bits() == y.to_bits(),
            "{}: element {} differs bitwise: {:?} vs {:?}",
            label,
            i,
            x,
            y
        );
    }
    Ok(())
}

/// Builds a symmetric graph from a raw (possibly duplicated) edge
/// list; self-loops are dropped.
fn build_graph(n: usize, edges: &[(usize, usize)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    // A ring keeps every node connected so degrees are never zero.
    for v in 0..n as u32 {
        b.add_edge(v, (v + 1) % n as u32);
    }
    for &(u, v) in edges {
        let (u, v) = (u % n, v % n);
        if u != v {
            b.add_edge(u as u32, v as u32);
        }
    }
    b.symmetrize().build().expect("build")
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-4.0f32..4.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn matmul_variants_identical_across_widths(
        a in matrix(9, 7),
        b in matrix(7, 5),
        c in matrix(9, 5),
    ) {
        let reference = gnnav_par::with_thread_limit(1, || {
            (a.matmul(&b), a.matmul_at_b(&c), b.matmul_a_bt(&c))
        });
        for w in WIDTHS {
            let (ab, atb, abt) = gnnav_par::with_thread_limit(w, || {
                (a.matmul(&b), a.matmul_at_b(&c), b.matmul_a_bt(&c))
            });
            assert_bits_eq("matmul", &reference.0, &ab)?;
            assert_bits_eq("matmul_at_b", &reference.1, &atb)?;
            assert_bits_eq("matmul_a_bt", &reference.2, &abt)?;
        }
    }

    #[test]
    fn aggregations_identical_across_widths(
        n in 2usize..12,
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..40),
        vals in proptest::collection::vec(-3.0f32..3.0, 12 * 6),
    ) {
        let g = build_graph(n, &edges);
        let x = Matrix::from_vec(n, 6, vals[..n * 6].to_vec());
        let reference = gnnav_par::with_thread_limit(1, || {
            (gcn_aggregate(&g, &x), mean_aggregate(&g, &x), mean_aggregate_backward(&g, &x))
        });
        for w in WIDTHS {
            let (gc, me, mb) = gnnav_par::with_thread_limit(w, || {
                (gcn_aggregate(&g, &x), mean_aggregate(&g, &x), mean_aggregate_backward(&g, &x))
            });
            assert_bits_eq("gcn_aggregate", &reference.0, &gc)?;
            assert_bits_eq("mean_aggregate", &reference.1, &me)?;
            assert_bits_eq("mean_aggregate_backward", &reference.2, &mb)?;
        }
    }

    #[test]
    fn model_forward_and_training_identical_across_widths(
        kind_idx in 0usize..3,
        seed in 0u64..20,
        n in 4usize..10,
        edges in proptest::collection::vec((0usize..10, 0usize..10), 0..25),
    ) {
        let kind = ModelKind::ALL[kind_idx];
        let g = build_graph(n, &edges);
        let x = gnnav_nn::init::glorot_uniform(n, 5, seed);
        let labels: Vec<u16> = (0..n as u16).map(|v| v % 3).collect();
        let targets: Vec<u32> = (0..n as u32).collect();

        // Forward + three full training steps (forward, loss,
        // backward, Adam) under each width: any single bit of
        // divergence in a gradient would compound into the weights and
        // show up in the final logits.
        let run = |w: usize| {
            gnnav_par::with_thread_limit(w, || {
                let mut m = GnnModel::new(kind, 5, 8, 3, 2, seed);
                let first = m.forward(&g, &x);
                let mut opt = Adam::new(0.01);
                let mut losses = Vec::new();
                for _ in 0..3 {
                    losses.push(gnnav_nn::train::train_step(
                        &mut m, &mut opt, &g, &x, &labels, &targets,
                    ));
                }
                m.set_train_mode(false);
                (first, losses, m.forward(&g, &x))
            })
        };
        let reference = run(1);
        for w in WIDTHS {
            let (first, losses, last) = run(w);
            assert_bits_eq("forward", &reference.0, &first)?;
            for (i, (a, b)) in reference.1.iter().zip(&losses).enumerate() {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "loss {} differs at width {}: {:?} vs {:?}",
                    i,
                    w,
                    a,
                    b
                );
            }
            assert_bits_eq("post-training forward", &reference.2, &last)?;
        }
    }
}
