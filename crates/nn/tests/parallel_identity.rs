//! Bitwise identity of the parallel kernels across thread counts.
//!
//! Every parallel kernel in the NN substrate partitions *output*
//! elements over workers while keeping the per-element accumulation
//! order identical to the serial loop. That makes results bitwise
//! reproducible regardless of pool width — the property the
//! determinism suite and `(seed, plan)` fault replay depend on. These
//! tests pin it down: each kernel is run under
//! [`gnnav_par::with_thread_limit`] at widths 1/2/4/8 and the outputs
//! are compared bit-for-bit against the single-threaded reference.
//!
//! Thread limits above the core count still exercise real worker
//! threads (the limit overrides the hardware budget), so this suite is
//! meaningful even on single-core CI runners.

use gnnav_graph::generators::barabasi_albert;
use gnnav_graph::{Graph, GraphBuilder};
use gnnav_nn::layers::{gcn_aggregate, mean_aggregate, mean_aggregate_backward, GatLayer, Layer};
use gnnav_nn::scratch::ScratchArena;
use gnnav_nn::tensor::Matrix;
use gnnav_nn::{Adam, GnnModel, ModelKind};
use proptest::prelude::*;

const WIDTHS: [usize; 3] = [2, 4, 8];

/// All widths including the serial reference — the degree-bucketed
/// tests sweep 1/2/4/8 explicitly so width 1 also runs through the
/// weighted-task scheduler (single-run path) rather than being assumed.
const ALL_WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn assert_bits_eq(label: &str, a: &Matrix, b: &Matrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.rows(), b.rows(), "{} rows", label);
    prop_assert_eq!(a.cols(), b.cols(), "{} cols", label);
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        prop_assert!(
            x.to_bits() == y.to_bits(),
            "{}: element {} differs bitwise: {:?} vs {:?}",
            label,
            i,
            x,
            y
        );
    }
    Ok(())
}

/// Builds a symmetric graph from a raw (possibly duplicated) edge
/// list; self-loops are dropped.
fn build_graph(n: usize, edges: &[(usize, usize)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    // A ring keeps every node connected so degrees are never zero.
    for v in 0..n as u32 {
        b.add_edge(v, (v + 1) % n as u32);
    }
    for &(u, v) in edges {
        let (u, v) = (u % n, v % n);
        if u != v {
            b.add_edge(u as u32, v as u32);
        }
    }
    b.symmetrize().build().expect("build")
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-4.0f32..4.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// A skewed power-law graph whose degree sequence actually exercises
/// the bucketed schedule: Barabási–Albert preferential attachment plus
/// a star overlay on node 0 guarantees at least one hub row above the
/// heavy-degree threshold while the leaf tail batches into light
/// groups.
fn skewed_graph(n: usize, seed: u64) -> Graph {
    let ba = barabasi_albert(n, 3, seed).expect("gen");
    let mut b = GraphBuilder::new(n);
    for (u, v) in ba.edges() {
        b.add_edge(u, v);
    }
    for v in 1..(n as u32).min(100) {
        b.add_edge(0, v);
    }
    b.symmetrize().build().expect("build")
}

#[test]
fn bucketed_aggregations_identical_across_widths() {
    // Wide feature dimension (128 >= 2 * FEAT_TILE) so hub rows split
    // into column tiles — the full degree-aware schedule, not just the
    // light-group path.
    let g = skewed_graph(300, 5);
    let sched = g.agg_schedule();
    assert!(sched.fwd.heavy_groups > 0, "graph must produce heavy groups");
    assert!(sched.fwd.groups.len() > sched.fwd.heavy_groups, "and light groups");
    for d in [1usize, 3, 128] {
        let x = gnnav_nn::init::glorot_uniform(300, d, 6);
        let reference = gnnav_par::with_thread_limit(1, || {
            (gcn_aggregate(&g, &x), mean_aggregate(&g, &x), mean_aggregate_backward(&g, &x))
        });
        for w in ALL_WIDTHS {
            let (gc, me, mb) = gnnav_par::with_thread_limit(w, || {
                (gcn_aggregate(&g, &x), mean_aggregate(&g, &x), mean_aggregate_backward(&g, &x))
            });
            let check = |label: &str, a: &Matrix, b: &Matrix| {
                for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
                    assert!(
                        x.to_bits() == y.to_bits(),
                        "{label} d={d} width={w}: element {i} differs: {x:?} vs {y:?}"
                    );
                }
            };
            check("gcn_aggregate", &reference.0, &gc);
            check("mean_aggregate", &reference.1, &me);
            check("mean_aggregate_backward", &reference.2, &mb);
        }
    }
}

#[test]
fn bucketed_gat_identical_across_widths() {
    // GAT exercises every scheduled code path at once: the span-carved
    // softmax pass, the column-tiled output pass (out_dim 128), and
    // the transpose-grouped backward gather.
    let g = skewed_graph(200, 9);
    assert!(g.agg_schedule().fwd.heavy_groups > 0);
    let x = gnnav_nn::init::glorot_uniform(200, 8, 10);
    let r = gnnav_nn::init::glorot_uniform(200, 128, 11);
    let run = |w: usize| {
        gnnav_par::with_thread_limit(w, || {
            let mut layer = GatLayer::new(8, 128, 12);
            let mut scratch = ScratchArena::new();
            let out = layer.forward(&g, &x, &mut scratch);
            layer.zero_grad();
            let gx = layer.backward(&g, &r, &mut scratch);
            (out, gx)
        })
    };
    let reference = run(1);
    for w in ALL_WIDTHS {
        let (out, gx) = run(w);
        for (label, a, b) in [("forward", &reference.0, &out), ("backward", &reference.1, &gx)] {
            for (i, (p, q)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
                assert!(
                    p.to_bits() == q.to_bits(),
                    "gat {label} width={w}: element {i} differs: {p:?} vs {q:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn matmul_variants_identical_across_widths(
        a in matrix(9, 7),
        b in matrix(7, 5),
        c in matrix(9, 5),
    ) {
        let reference = gnnav_par::with_thread_limit(1, || {
            (a.matmul(&b), a.matmul_at_b(&c), b.matmul_a_bt(&c))
        });
        for w in WIDTHS {
            let (ab, atb, abt) = gnnav_par::with_thread_limit(w, || {
                (a.matmul(&b), a.matmul_at_b(&c), b.matmul_a_bt(&c))
            });
            assert_bits_eq("matmul", &reference.0, &ab)?;
            assert_bits_eq("matmul_at_b", &reference.1, &atb)?;
            assert_bits_eq("matmul_a_bt", &reference.2, &abt)?;
        }
    }

    #[test]
    fn aggregations_identical_across_widths(
        n in 2usize..12,
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..40),
        vals in proptest::collection::vec(-3.0f32..3.0, 12 * 6),
    ) {
        let g = build_graph(n, &edges);
        let x = Matrix::from_vec(n, 6, vals[..n * 6].to_vec());
        let reference = gnnav_par::with_thread_limit(1, || {
            (gcn_aggregate(&g, &x), mean_aggregate(&g, &x), mean_aggregate_backward(&g, &x))
        });
        for w in WIDTHS {
            let (gc, me, mb) = gnnav_par::with_thread_limit(w, || {
                (gcn_aggregate(&g, &x), mean_aggregate(&g, &x), mean_aggregate_backward(&g, &x))
            });
            assert_bits_eq("gcn_aggregate", &reference.0, &gc)?;
            assert_bits_eq("mean_aggregate", &reference.1, &me)?;
            assert_bits_eq("mean_aggregate_backward", &reference.2, &mb)?;
        }
    }

    #[test]
    fn model_forward_and_training_identical_across_widths(
        kind_idx in 0usize..3,
        seed in 0u64..20,
        n in 4usize..10,
        edges in proptest::collection::vec((0usize..10, 0usize..10), 0..25),
    ) {
        let kind = ModelKind::ALL[kind_idx];
        let g = build_graph(n, &edges);
        let x = gnnav_nn::init::glorot_uniform(n, 5, seed);
        let labels: Vec<u16> = (0..n as u16).map(|v| v % 3).collect();
        let targets: Vec<u32> = (0..n as u32).collect();

        // Forward + three full training steps (forward, loss,
        // backward, Adam) under each width: any single bit of
        // divergence in a gradient would compound into the weights and
        // show up in the final logits.
        let run = |w: usize| {
            gnnav_par::with_thread_limit(w, || {
                let mut m = GnnModel::new(kind, 5, 8, 3, 2, seed);
                let first = m.forward(&g, &x);
                let mut opt = Adam::new(0.01);
                let mut losses = Vec::new();
                for _ in 0..3 {
                    losses.push(gnnav_nn::train::train_step(
                        &mut m, &mut opt, &g, &x, &labels, &targets,
                    ));
                }
                m.set_train_mode(false);
                (first, losses, m.forward(&g, &x))
            })
        };
        let reference = run(1);
        for w in WIDTHS {
            let (first, losses, last) = run(w);
            assert_bits_eq("forward", &reference.0, &first)?;
            for (i, (a, b)) in reference.1.iter().zip(&losses).enumerate() {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "loss {} differs at width {}: {:?} vs {:?}",
                    i,
                    w,
                    a,
                    b
                );
            }
            assert_bits_eq("post-training forward", &reference.2, &last)?;
        }
    }
}
