//! Property-based tests for the NN substrate.

use gnnav_graph::GraphBuilder;
use gnnav_nn::loss::softmax_cross_entropy;
use gnnav_nn::tensor::Matrix;
use gnnav_nn::{Adam, GnnModel, ModelKind};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f32..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matmul_identity_is_noop(m in matrix(4, 4)) {
        let i = Matrix::eye(4);
        let left = i.matmul(&m);
        let right = m.matmul(&i);
        for (a, b) in left.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
        for (a, b) in right.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_is_involutive(m in matrix(3, 5)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn at_b_equals_explicit_transpose(a in matrix(4, 3), b in matrix(4, 2)) {
        let fast = a.matmul_at_b(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(m in matrix(5, 7)) {
        let mut s = m;
        s.softmax_rows_inplace();
        for r in 0..5 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative(
        logits in matrix(4, 3),
        labels in proptest::collection::vec(0u16..3, 4),
    ) {
        let (loss, grad) = softmax_cross_entropy(&logits, &labels, &[0, 1, 2, 3]);
        prop_assert!(loss >= -1e-6, "loss {loss}");
        // Per-row gradient sums to zero.
        for r in 0..4 {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn forward_output_is_finite(seed in 0u64..30, kind_idx in 0usize..3) {
        let mut b = GraphBuilder::new(6);
        for v in 0..6u32 {
            b.add_edge(v, (v + 1) % 6);
        }
        let g = b.symmetrize().build().expect("build");
        let x = gnnav_nn::init::glorot_uniform(6, 5, seed);
        let mut m = GnnModel::new(ModelKind::ALL[kind_idx], 5, 8, 3, 2, seed);
        let out = m.forward(&g, &x);
        prop_assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn adam_step_moves_weights_against_gradient(lr in 0.001f32..0.1) {
        use gnnav_nn::layers::{LinearParam, ParamRef};
        let mut p = LinearParam::new_no_bias(1, 1, 1);
        let w0 = p.w.get(0, 0);
        p.gw.set(0, 0, 1.0); // positive gradient
        let mut opt = Adam::new(lr);
        opt.step(&mut [ParamRef::Linear(&mut p)]);
        prop_assert!(p.w.get(0, 0) < w0, "positive grad must decrease w");
    }
}
