//! GNN layers with explicit forward/backward passes.
//!
//! Each layer follows the paper's Aggregate/Combine decomposition
//! (Eq. 1): a sparse neighborhood aggregation over the mini-batch
//! subgraph followed by a dense linear combine. Three layer families
//! are provided, matching the models the paper evaluates:
//!
//! - [`GcnLayer`]: symmetric-normalized aggregation (Kipf & Welling).
//! - [`SageLayer`]: mean aggregation with a separate self transform
//!   (GraphSAGE).
//! - [`GatLayer`]: single-head additive attention (GAT).
//!
//! Layers cache whatever the backward pass needs; call order must be
//! `forward` then `backward` on the same input graph.

use crate::init::{glorot_uniform, uniform_vec};
use crate::tensor::Matrix;
use gnnav_graph::Graph;

/// A trainable dense parameter: weight matrix plus bias with gradient
/// accumulators.
#[derive(Debug, Clone)]
pub struct LinearParam {
    /// Weight, `in_dim x out_dim`.
    pub w: Matrix,
    /// Bias, length `out_dim` (empty when the parameter has no bias).
    pub b: Vec<f32>,
    /// Gradient of `w`.
    pub gw: Matrix,
    /// Gradient of `b`.
    pub gb: Vec<f32>,
}

impl LinearParam {
    /// Glorot-initialized parameter with bias.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        LinearParam {
            w: glorot_uniform(in_dim, out_dim, seed),
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(in_dim, out_dim),
            gb: vec![0.0; out_dim],
        }
    }

    /// Glorot-initialized parameter without bias.
    pub fn new_no_bias(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        LinearParam {
            w: glorot_uniform(in_dim, out_dim, seed),
            b: Vec::new(),
            gw: Matrix::zeros(in_dim, out_dim),
            gb: Vec::new(),
        }
    }

    /// Number of scalar parameters.
    pub fn count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw.as_mut_slice().fill(0.0);
        self.gb.fill(0.0);
    }
}

/// A vector parameter (attention weights) with gradient accumulator.
#[derive(Debug, Clone)]
pub struct VecParam {
    /// The parameter values.
    pub v: Vec<f32>,
    /// The gradient accumulator.
    pub g: Vec<f32>,
}

impl VecParam {
    /// Uniform-initialized vector parameter.
    pub fn new(len: usize, seed: u64) -> Self {
        VecParam { v: uniform_vec(len, 0.3, seed), g: vec![0.0; len] }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.g.fill(0.0);
    }
}

/// Mutable views over a layer's parameters, in a stable order, for the
/// optimizer.
pub enum ParamRef<'a> {
    /// A dense weight + bias parameter.
    Linear(&'a mut LinearParam),
    /// A vector parameter.
    Vector(&'a mut VecParam),
}

/// Common interface of all GNN layers.
pub trait Layer: std::fmt::Debug + Send {
    /// Input feature dimensionality.
    fn in_dim(&self) -> usize;
    /// Output feature dimensionality.
    fn out_dim(&self) -> usize;
    /// Forward pass over subgraph `g` with node features `x`
    /// (`g.num_nodes() x in_dim`); caches intermediates for backward.
    fn forward(&mut self, g: &Graph, x: &Matrix) -> Matrix;
    /// Backward pass: consumes `grad_out`, accumulates parameter
    /// gradients, returns the gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    fn backward(&mut self, g: &Graph, grad_out: &Matrix) -> Matrix;
    /// Parameters in a stable order.
    fn params_mut(&mut self) -> Vec<ParamRef<'_>>;
    /// Total scalar parameter count (`|Φ|` contribution).
    fn param_count(&self) -> usize;
    /// Clears all parameter gradients.
    fn zero_grad(&mut self);
}

/// Symmetric-normalized GCN aggregation with self-loops:
/// `out[v] = Σ_{u ∈ N(v) ∪ {v}} x[u] / sqrt((d_u + 1)(d_v + 1))`.
///
/// The coefficient matrix is symmetric, so the same routine implements
/// the backward (transpose) aggregation.
pub fn gcn_aggregate(g: &Graph, x: &Matrix) -> Matrix {
    let n = g.num_nodes();
    let d = x.cols();
    let mut out = Matrix::zeros(n, d);
    let inv_sqrt: Vec<f32> =
        (0..n as u32).map(|v| 1.0 / ((g.degree(v) + 1) as f32).sqrt()).collect();
    for v in 0..n as u32 {
        let cv = inv_sqrt[v as usize];
        // Self-loop term.
        {
            let coeff = cv * cv;
            let src = x.row(v as usize).to_vec();
            let dst = out.row_mut(v as usize);
            for (o, s) in dst.iter_mut().zip(&src) {
                *o += coeff * s;
            }
        }
        for &u in g.neighbors(v) {
            let coeff = cv * inv_sqrt[u as usize];
            let src = x.row(u as usize);
            // Split borrow: rows are disjoint unless u == v, which the
            // self-loop already covered (neighbors exclude self-loops
            // in our builders; if present, the += below still works
            // through the temporary copy).
            let src: Vec<f32> = src.to_vec();
            let dst = out.row_mut(v as usize);
            for (o, s) in dst.iter_mut().zip(&src) {
                *o += coeff * s;
            }
        }
    }
    out
}

/// Mean aggregation: `out[v] = mean_{u ∈ N(v)} x[u]` (zero for
/// isolated nodes).
pub fn mean_aggregate(g: &Graph, x: &Matrix) -> Matrix {
    let n = g.num_nodes();
    let d = x.cols();
    let mut out = Matrix::zeros(n, d);
    for v in 0..n as u32 {
        let neigh = g.neighbors(v);
        if neigh.is_empty() {
            continue;
        }
        let inv = 1.0 / neigh.len() as f32;
        let mut acc = vec![0.0f32; d];
        for &u in neigh {
            for (a, &s) in acc.iter_mut().zip(x.row(u as usize)) {
                *a += s;
            }
        }
        for (o, a) in out.row_mut(v as usize).iter_mut().zip(&acc) {
            *o = a * inv;
        }
    }
    out
}

/// Transpose of [`mean_aggregate`]: scatters `grad_out[v] / deg(v)`
/// back to each neighbor `u` of `v`.
pub fn mean_aggregate_backward(g: &Graph, grad_out: &Matrix) -> Matrix {
    let n = g.num_nodes();
    let d = grad_out.cols();
    let mut out = Matrix::zeros(n, d);
    for v in 0..n as u32 {
        let neigh = g.neighbors(v);
        if neigh.is_empty() {
            continue;
        }
        let inv = 1.0 / neigh.len() as f32;
        let grad: Vec<f32> = grad_out.row(v as usize).iter().map(|&x| x * inv).collect();
        for &u in neigh {
            for (o, &gv) in out.row_mut(u as usize).iter_mut().zip(&grad) {
                *o += gv;
            }
        }
    }
    out
}

/// GCN layer: `out = GcnAgg(g, x) · W + b`.
#[derive(Debug)]
pub struct GcnLayer {
    lin: LinearParam,
    cache_ax: Option<Matrix>,
}

impl GcnLayer {
    /// Creates a GCN layer with Glorot-initialized weights.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        GcnLayer { lin: LinearParam::new(in_dim, out_dim, seed), cache_ax: None }
    }
}

impl Layer for GcnLayer {
    fn in_dim(&self) -> usize {
        self.lin.w.rows()
    }

    fn out_dim(&self) -> usize {
        self.lin.w.cols()
    }

    fn forward(&mut self, g: &Graph, x: &Matrix) -> Matrix {
        let ax = gcn_aggregate(g, x);
        let mut out = ax.matmul(&self.lin.w);
        out.add_row_broadcast(&self.lin.b);
        self.cache_ax = Some(ax);
        out
    }

    fn backward(&mut self, g: &Graph, grad_out: &Matrix) -> Matrix {
        let ax = self.cache_ax.as_ref().expect("forward before backward");
        self.lin.gw.add_assign(&ax.matmul_at_b(grad_out));
        for r in 0..grad_out.rows() {
            for (gb, &gv) in self.lin.gb.iter_mut().zip(grad_out.row(r)) {
                *gb += gv;
            }
        }
        let d_ax = grad_out.matmul_a_bt(&self.lin.w);
        // Symmetric coefficients: the transpose aggregation is the
        // forward aggregation.
        gcn_aggregate(g, &d_ax)
    }

    fn params_mut(&mut self) -> Vec<ParamRef<'_>> {
        vec![ParamRef::Linear(&mut self.lin)]
    }

    fn param_count(&self) -> usize {
        self.lin.count()
    }

    fn zero_grad(&mut self) {
        self.lin.zero_grad();
    }
}

/// GraphSAGE layer with mean aggregator:
/// `out = x · W_self + MeanAgg(g, x) · W_neigh + b`.
#[derive(Debug)]
pub struct SageLayer {
    lin_self: LinearParam,
    lin_neigh: LinearParam,
    cache_x: Option<Matrix>,
    cache_mean: Option<Matrix>,
}

impl SageLayer {
    /// Creates a SAGE layer with Glorot-initialized weights.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        SageLayer {
            lin_self: LinearParam::new(in_dim, out_dim, seed),
            lin_neigh: LinearParam::new_no_bias(in_dim, out_dim, seed.wrapping_add(1)),
            cache_x: None,
            cache_mean: None,
        }
    }
}

impl Layer for SageLayer {
    fn in_dim(&self) -> usize {
        self.lin_self.w.rows()
    }

    fn out_dim(&self) -> usize {
        self.lin_self.w.cols()
    }

    fn forward(&mut self, g: &Graph, x: &Matrix) -> Matrix {
        let mean = mean_aggregate(g, x);
        let mut out = x.matmul(&self.lin_self.w);
        out.add_assign(&mean.matmul(&self.lin_neigh.w));
        out.add_row_broadcast(&self.lin_self.b);
        self.cache_x = Some(x.clone());
        self.cache_mean = Some(mean);
        out
    }

    fn backward(&mut self, g: &Graph, grad_out: &Matrix) -> Matrix {
        let x = self.cache_x.as_ref().expect("forward before backward");
        let mean = self.cache_mean.as_ref().expect("forward before backward");
        self.lin_self.gw.add_assign(&x.matmul_at_b(grad_out));
        self.lin_neigh.gw.add_assign(&mean.matmul_at_b(grad_out));
        for r in 0..grad_out.rows() {
            for (gb, &gv) in self.lin_self.gb.iter_mut().zip(grad_out.row(r)) {
                *gb += gv;
            }
        }
        let mut grad_x = grad_out.matmul_a_bt(&self.lin_self.w);
        let d_mean = grad_out.matmul_a_bt(&self.lin_neigh.w);
        grad_x.add_assign(&mean_aggregate_backward(g, &d_mean));
        grad_x
    }

    fn params_mut(&mut self) -> Vec<ParamRef<'_>> {
        vec![ParamRef::Linear(&mut self.lin_self), ParamRef::Linear(&mut self.lin_neigh)]
    }

    fn param_count(&self) -> usize {
        self.lin_self.count() + self.lin_neigh.count()
    }

    fn zero_grad(&mut self) {
        self.lin_self.zero_grad();
        self.lin_neigh.zero_grad();
    }
}

const LEAKY_SLOPE: f32 = 0.2;

/// Single-head GAT layer with additive attention:
///
/// `e_uv = LeakyReLU(a_l · (W x_u) + a_r · (W x_v))`,
/// `α_·v = softmax_u(e_uv)` over `u ∈ N(v) ∪ {v}`,
/// `out[v] = Σ_u α_uv (W x_u) + b`.
#[derive(Debug)]
pub struct GatLayer {
    lin: LinearParam,
    att_l: VecParam,
    att_r: VecParam,
    cache: Option<GatCache>,
}

#[derive(Debug)]
struct GatCache {
    x: Matrix,
    z: Matrix,
    /// Flattened attention weights: for node `v`, entries
    /// `alpha_off[v]..alpha_off[v+1]` cover `N(v)` then the self term.
    alpha: Vec<f32>,
    /// Pre-activation LeakyReLU inputs aligned with `alpha`.
    pre: Vec<f32>,
    alpha_off: Vec<usize>,
}

impl GatLayer {
    /// Creates a GAT layer with Glorot weights and uniform attention
    /// vectors.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        GatLayer {
            lin: LinearParam::new(in_dim, out_dim, seed),
            att_l: VecParam::new(out_dim, seed.wrapping_add(2)),
            att_r: VecParam::new(out_dim, seed.wrapping_add(3)),
            cache: None,
        }
    }
}

fn leaky(x: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        LEAKY_SLOPE * x
    }
}

fn leaky_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        LEAKY_SLOPE
    }
}

impl Layer for GatLayer {
    fn in_dim(&self) -> usize {
        self.lin.w.rows()
    }

    fn out_dim(&self) -> usize {
        self.lin.w.cols()
    }

    fn forward(&mut self, g: &Graph, x: &Matrix) -> Matrix {
        let n = g.num_nodes();
        let d = self.out_dim();
        let z = x.matmul(&self.lin.w);
        let dot = |row: &[f32], v: &[f32]| -> f32 { row.iter().zip(v).map(|(a, b)| a * b).sum() };
        let s_l: Vec<f32> = (0..n).map(|v| dot(z.row(v), &self.att_l.v)).collect();
        let s_r: Vec<f32> = (0..n).map(|v| dot(z.row(v), &self.att_r.v)).collect();

        let mut alpha_off = Vec::with_capacity(n + 1);
        alpha_off.push(0usize);
        let mut pre: Vec<f32> = Vec::with_capacity(g.num_edges() + n);
        for v in 0..n as u32 {
            for &u in g.neighbors(v) {
                pre.push(leakish_input(s_l[u as usize], s_r[v as usize]));
            }
            pre.push(leakish_input(s_l[v as usize], s_r[v as usize])); // self
            alpha_off.push(pre.len());
        }
        let mut alpha = vec![0.0f32; pre.len()];
        let mut out = Matrix::zeros(n, d);
        for v in 0..n as u32 {
            let (start, end) = (alpha_off[v as usize], alpha_off[v as usize + 1]);
            let mut max = f32::NEG_INFINITY;
            for &p in &pre[start..end] {
                max = max.max(leaky(p));
            }
            let mut sum = 0.0f32;
            for i in start..end {
                let e = (leaky(pre[i]) - max).exp();
                alpha[i] = e;
                sum += e;
            }
            for a in &mut alpha[start..end] {
                *a /= sum;
            }
            // out[v] = Σ α z[u] over neighbors then self.
            let mut acc = vec![0.0f32; d];
            for (i, &u) in g.neighbors(v).iter().enumerate() {
                let a = alpha[start + i];
                for (o, &zz) in acc.iter_mut().zip(z.row(u as usize)) {
                    *o += a * zz;
                }
            }
            let a_self = alpha[end - 1];
            for (o, &zz) in acc.iter_mut().zip(z.row(v as usize)) {
                *o += a_self * zz;
            }
            for ((o, a), &b) in out.row_mut(v as usize).iter_mut().zip(acc).zip(&self.lin.b) {
                *o = a + b;
            }
        }
        self.cache = Some(GatCache { x: x.clone(), z, alpha, pre, alpha_off });
        out
    }

    fn backward(&mut self, g: &Graph, grad_out: &Matrix) -> Matrix {
        let cache = self.cache.as_ref().expect("forward before backward");
        let n = g.num_nodes();
        let d = self.out_dim();
        let GatCache { x, z, alpha, pre, alpha_off } = cache;

        let mut dz = Matrix::zeros(n, d);
        let mut ds_l = vec![0.0f32; n];
        let mut ds_r = vec![0.0f32; n];

        // Bias gradient.
        for r in 0..n {
            for (gb, &gv) in self.lin.gb.iter_mut().zip(grad_out.row(r)) {
                *gb += gv;
            }
        }

        for v in 0..n as u32 {
            let (start, end) = (alpha_off[v as usize], alpha_off[v as usize + 1]);
            let go = grad_out.row(v as usize);
            // Members of the softmax set: neighbors then self.
            let count = end - start;
            let mut d_alpha = vec![0.0f32; count];
            for (i, &u) in g.neighbors(v).iter().enumerate() {
                let zu = z.row(u as usize);
                d_alpha[i] = go.iter().zip(zu).map(|(a, b)| a * b).sum();
                let a = alpha[start + i];
                for (o, &gv) in dz.row_mut(u as usize).iter_mut().zip(go) {
                    *o += a * gv;
                }
            }
            {
                let zv = z.row(v as usize);
                d_alpha[count - 1] = go.iter().zip(zv).map(|(a, b)| a * b).sum();
                let a = alpha[end - 1];
                for (o, &gv) in dz.row_mut(v as usize).iter_mut().zip(go) {
                    *o += a * gv;
                }
            }
            // Softmax backward.
            let dot: f32 = (0..count).map(|i| alpha[start + i] * d_alpha[i]).sum();
            for i in 0..count {
                let de = alpha[start + i] * (d_alpha[i] - dot);
                let dpre = de * leaky_grad(pre[start + i]);
                let u = if i + 1 == count { v } else { g.neighbors(v)[i] };
                ds_l[u as usize] += dpre;
                ds_r[v as usize] += dpre;
            }
        }

        // s_l[u] = z[u]·a_l and s_r[u] = z[u]·a_r.
        for u in 0..n {
            let zu = z.row(u);
            for ((ga, &zz), (gb, _)) in
                self.att_l.g.iter_mut().zip(zu).zip(self.att_r.g.iter_mut().zip(zu))
            {
                *ga += ds_l[u] * zz;
                *gb += ds_r[u] * zz;
            }
            let dzu = dz.row_mut(u);
            for ((o, &al), &ar) in dzu.iter_mut().zip(&self.att_l.v).zip(&self.att_r.v) {
                *o += ds_l[u] * al + ds_r[u] * ar;
            }
        }

        self.lin.gw.add_assign(&x.matmul_at_b(&dz));
        dz.matmul_a_bt(&self.lin.w)
    }

    fn params_mut(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef::Linear(&mut self.lin),
            ParamRef::Vector(&mut self.att_l),
            ParamRef::Vector(&mut self.att_r),
        ]
    }

    fn param_count(&self) -> usize {
        self.lin.count() + self.att_l.v.len() + self.att_r.v.len()
    }

    fn zero_grad(&mut self) {
        self.lin.zero_grad();
        self.att_l.zero_grad();
        self.att_r.zero_grad();
    }
}

/// The raw (pre-LeakyReLU) attention logit for source score `sl` and
/// destination score `sr`. Kept as a function so forward and backward
/// agree on the definition.
#[inline]
fn leakish_input(sl: f32, sr: f32) -> f32 {
    sl + sr
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_graph::GraphBuilder;

    fn tiny_graph() -> Graph {
        // 4 nodes: triangle 0-1-2 plus edge 2-3, undirected.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2).add_edge(2, 3);
        b.symmetrize().build().expect("build")
    }

    fn tiny_x(seed: u64) -> Matrix {
        glorot_uniform(4, 3, seed)
    }

    use crate::init::glorot_uniform;

    #[test]
    fn gcn_aggregate_row_is_weighted_sum() {
        let g = tiny_graph();
        let x = Matrix::eye(4);
        let ax = gcn_aggregate(&g, &x);
        // Row 3: self (deg 1): 1/2; neighbor 2 (deg 3): 1/(sqrt(2)*sqrt(4)).
        assert!((ax.get(3, 3) - 0.5).abs() < 1e-6);
        assert!((ax.get(3, 2) - 1.0 / (2.0f32.sqrt() * 2.0)).abs() < 1e-6);
        assert_eq!(ax.get(3, 0), 0.0);
    }

    #[test]
    fn mean_aggregate_averages_neighbors() {
        let g = tiny_graph();
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let m = mean_aggregate(&g, &x);
        // Node 0 neighbors {1, 2}: mean 2.5.
        assert!((m.get(0, 0) - 2.5).abs() < 1e-6);
        // Node 3 neighbors {2}: 3.0.
        assert!((m.get(3, 0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn mean_backward_is_transpose() {
        // <Agg x, y> == <x, AggT y> for random x, y.
        let g = tiny_graph();
        let x = glorot_uniform(4, 3, 1);
        let y = glorot_uniform(4, 3, 2);
        let fwd = mean_aggregate(&g, &x);
        let bwd = mean_aggregate_backward(&g, &y);
        let ip = |a: &Matrix, b: &Matrix| -> f32 {
            a.as_slice().iter().zip(b.as_slice()).map(|(p, q)| p * q).sum()
        };
        assert!((ip(&fwd, &y) - ip(&x, &bwd)).abs() < 1e-4);
    }

    #[test]
    fn gcn_aggregate_is_self_adjoint() {
        let g = tiny_graph();
        let x = glorot_uniform(4, 2, 3);
        let y = glorot_uniform(4, 2, 4);
        let ip = |a: &Matrix, b: &Matrix| -> f32 {
            a.as_slice().iter().zip(b.as_slice()).map(|(p, q)| p * q).sum()
        };
        assert!((ip(&gcn_aggregate(&g, &x), &y) - ip(&x, &gcn_aggregate(&g, &y))).abs() < 1e-4);
    }

    /// Finite-difference gradient check for a layer: perturb inputs and
    /// weights, compare with analytic gradients under loss
    /// `L = Σ out ⊙ R` for a fixed random `R`.
    fn grad_check<L: Layer>(mut layer: L, tol: f32) {
        let g = tiny_graph();
        let x = tiny_x(7);
        let r = glorot_uniform(4, layer.out_dim(), 8);

        let out = layer.forward(&g, &x);
        let _loss0: f32 = out.as_slice().iter().zip(r.as_slice()).map(|(a, b)| a * b).sum();
        layer.zero_grad();
        let grad_x = layer.backward(&g, &r);

        let eps = 1e-2f32;
        // Check d L / d x at a few positions.
        for &(rr, cc) in &[(0usize, 0usize), (2, 1), (3, 2)] {
            let mut xp = x.clone();
            xp.set(rr, cc, xp.get(rr, cc) + eps);
            let op = layer.forward(&g, &xp);
            let lp: f32 = op.as_slice().iter().zip(r.as_slice()).map(|(a, b)| a * b).sum();
            let mut xm = x.clone();
            xm.set(rr, cc, xm.get(rr, cc) - eps);
            let om = layer.forward(&g, &xm);
            let lm: f32 = om.as_slice().iter().zip(r.as_slice()).map(|(a, b)| a * b).sum();
            let fd = (lp - lm) / (2.0 * eps);
            let an = grad_x.get(rr, cc);
            assert!(
                (fd - an).abs() < tol * (1.0 + fd.abs().max(an.abs())),
                "input grad mismatch at ({rr},{cc}): fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn gcn_gradient_check() {
        grad_check(GcnLayer::new(3, 2, 11), 2e-2);
    }

    #[test]
    fn sage_gradient_check() {
        grad_check(SageLayer::new(3, 2, 12), 2e-2);
    }

    #[test]
    fn gat_gradient_check() {
        grad_check(GatLayer::new(3, 2, 13), 5e-2);
    }

    #[test]
    fn gat_weight_gradient_check() {
        // Finite-difference check on one weight entry of the GAT layer
        // (the trickiest gradient path: attention + combine).
        let g = tiny_graph();
        let x = tiny_x(20);
        let r = glorot_uniform(4, 2, 21);
        let mut layer = GatLayer::new(3, 2, 22);
        layer.forward(&g, &x);
        layer.zero_grad();
        layer.backward(&g, &r);
        let analytic = layer.lin.gw.get(1, 0);

        let eps = 1e-2f32;
        let orig = layer.lin.w.get(1, 0);
        layer.lin.w.set(1, 0, orig + eps);
        let lp: f32 =
            layer.forward(&g, &x).as_slice().iter().zip(r.as_slice()).map(|(a, b)| a * b).sum();
        layer.lin.w.set(1, 0, orig - eps);
        let lm: f32 =
            layer.forward(&g, &x).as_slice().iter().zip(r.as_slice()).map(|(a, b)| a * b).sum();
        let fd = (lp - lm) / (2.0 * eps);
        assert!((fd - analytic).abs() < 5e-2 * (1.0 + fd.abs()), "fd {fd} vs analytic {analytic}");
    }

    #[test]
    fn layer_dims_reported() {
        let l = SageLayer::new(5, 7, 1);
        assert_eq!(l.in_dim(), 5);
        assert_eq!(l.out_dim(), 7);
        assert_eq!(l.param_count(), 5 * 7 + 7 + 5 * 7);
    }

    #[test]
    #[should_panic(expected = "forward before backward")]
    fn backward_requires_forward() {
        let g = tiny_graph();
        let mut l = GcnLayer::new(3, 2, 1);
        let _ = l.backward(&g, &Matrix::zeros(4, 2));
    }

    #[test]
    fn gat_attention_sums_to_one() {
        let g = tiny_graph();
        let x = tiny_x(30);
        let mut l = GatLayer::new(3, 2, 31);
        l.forward(&g, &x);
        let cache = l.cache.as_ref().expect("cached");
        for v in 0..4 {
            let (s, e) = (cache.alpha_off[v], cache.alpha_off[v + 1]);
            let sum: f32 = cache.alpha[s..e].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "node {v} alpha sum {sum}");
        }
    }
}

/// Multi-head GAT layer: `H` independent [`GatLayer`] heads whose
/// outputs are *averaged* (the aggregation the GAT paper uses on its
/// output layer; averaging keeps the layer's output width equal to
/// `out_dim`, so heads compose transparently in a [`crate::GnnModel`]
/// stack).
#[derive(Debug)]
pub struct MultiHeadGatLayer {
    heads: Vec<GatLayer>,
}

impl MultiHeadGatLayer {
    /// Creates a layer with `num_heads` attention heads.
    ///
    /// # Panics
    ///
    /// Panics if `num_heads == 0`.
    pub fn new(in_dim: usize, out_dim: usize, num_heads: usize, seed: u64) -> Self {
        assert!(num_heads > 0, "at least one head required");
        let heads = (0..num_heads)
            .map(|h| GatLayer::new(in_dim, out_dim, seed.wrapping_add(31 * h as u64)))
            .collect();
        MultiHeadGatLayer { heads }
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }
}

impl Layer for MultiHeadGatLayer {
    fn in_dim(&self) -> usize {
        self.heads[0].in_dim()
    }

    fn out_dim(&self) -> usize {
        self.heads[0].out_dim()
    }

    fn forward(&mut self, g: &Graph, x: &Matrix) -> Matrix {
        let inv = 1.0 / self.heads.len() as f32;
        let mut acc: Option<Matrix> = None;
        for head in &mut self.heads {
            let out = head.forward(g, x);
            match &mut acc {
                None => acc = Some(out),
                Some(a) => a.add_assign(&out),
            }
        }
        let mut out = acc.expect("at least one head");
        out.scale(inv);
        out
    }

    fn backward(&mut self, g: &Graph, grad_out: &Matrix) -> Matrix {
        let inv = 1.0 / self.heads.len() as f32;
        let mut scaled = grad_out.clone();
        scaled.scale(inv);
        let mut acc: Option<Matrix> = None;
        for head in &mut self.heads {
            let gx = head.backward(g, &scaled);
            match &mut acc {
                None => acc = Some(gx),
                Some(a) => a.add_assign(&gx),
            }
        }
        acc.expect("at least one head")
    }

    fn params_mut(&mut self) -> Vec<ParamRef<'_>> {
        self.heads.iter_mut().flat_map(|h| h.params_mut()).collect()
    }

    fn param_count(&self) -> usize {
        self.heads.iter().map(|h| h.param_count()).sum()
    }

    fn zero_grad(&mut self) {
        for head in &mut self.heads {
            head.zero_grad();
        }
    }
}

#[cfg(test)]
mod multi_head_tests {
    use super::*;
    use crate::init::glorot_uniform;
    use gnnav_graph::GraphBuilder;

    fn tiny_graph() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2).add_edge(2, 3);
        b.symmetrize().build().expect("build")
    }

    #[test]
    fn single_head_matches_plain_gat() {
        let g = tiny_graph();
        let x = glorot_uniform(4, 3, 7);
        let mut multi = MultiHeadGatLayer::new(3, 2, 1, 40);
        let mut single = GatLayer::new(3, 2, 40);
        let a = multi.forward(&g, &x);
        let b = single.forward(&g, &x);
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn heads_have_distinct_parameters() {
        let mut m = MultiHeadGatLayer::new(3, 2, 4, 50);
        assert_eq!(m.num_heads(), 4);
        assert_eq!(m.param_count(), 4 * GatLayer::new(3, 2, 1).param_count());
        assert_eq!(m.params_mut().len(), 4 * 3);
    }

    #[test]
    fn multi_head_gradient_check() {
        // Finite-difference input-gradient check across the averaged
        // heads (same harness as the single layers).
        let g = tiny_graph();
        let x = glorot_uniform(4, 3, 8);
        let r = glorot_uniform(4, 2, 9);
        let mut layer = MultiHeadGatLayer::new(3, 2, 3, 60);
        layer.forward(&g, &x);
        layer.zero_grad();
        let grad_x = layer.backward(&g, &r);

        let eps = 1e-2f32;
        for &(rr, cc) in &[(0usize, 0usize), (3, 2)] {
            let loss = |layer: &mut MultiHeadGatLayer, x: &Matrix| -> f32 {
                layer.forward(&g, x).as_slice().iter().zip(r.as_slice()).map(|(a, b)| a * b).sum()
            };
            let mut xp = x.clone();
            xp.set(rr, cc, xp.get(rr, cc) + eps);
            let lp = loss(&mut layer, &xp);
            let mut xm = x.clone();
            xm.set(rr, cc, xm.get(rr, cc) - eps);
            let lm = loss(&mut layer, &xm);
            let fd = (lp - lm) / (2.0 * eps);
            let an = grad_x.get(rr, cc);
            assert!(
                (fd - an).abs() < 5e-2 * (1.0 + fd.abs().max(an.abs())),
                "({rr},{cc}): fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one head")]
    fn zero_heads_rejected() {
        let _ = MultiHeadGatLayer::new(3, 2, 0, 1);
    }
}
