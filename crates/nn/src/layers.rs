//! GNN layers with explicit forward/backward passes.
//!
//! Each layer follows the paper's Aggregate/Combine decomposition
//! (Eq. 1): a sparse neighborhood aggregation over the mini-batch
//! subgraph followed by a dense linear combine. Three layer families
//! are provided, matching the models the paper evaluates:
//!
//! - [`GcnLayer`]: symmetric-normalized aggregation (Kipf & Welling).
//! - [`SageLayer`]: mean aggregation with a separate self transform
//!   (GraphSAGE).
//! - [`GatLayer`]: single-head additive attention (GAT).
//!
//! Layers cache whatever the backward pass needs; call order must be
//! `forward` then `backward` on the same input graph. All temporaries
//! cycle through the caller's [`ScratchArena`], so steady-state
//! training allocates nothing per batch.
//!
//! # Parallelism and determinism
//!
//! The aggregation kernels are node-parallel: output rows are split
//! into static per-node chunks, every chunk runs the identical serial
//! inner loop, and per-element accumulation order never changes.
//! Backward aggregations that are scatters in textbook form
//! (`mean_aggregate_backward`, the GAT `dz`/`ds_l` terms) are
//! re-expressed as per-row *gathers* over the graph's cached
//! [`transpose`](gnnav_graph::Graph::transpose_csr): because in-edge
//! source lists are sorted ascending, the gather visits contributions
//! in exactly the order the serial scatter produced them, keeping
//! results bitwise identical across any worker count. Reductions into
//! shared parameter gradients stay serial to preserve their order.

use crate::init::{glorot_uniform, uniform_vec};
use crate::scratch::ScratchArena;
use crate::tensor::{axpy1, dot_lanes, Matrix};
use gnnav_graph::{AggGroup, Graph};

/// A trainable dense parameter: weight matrix plus bias with gradient
/// accumulators.
#[derive(Debug, Clone)]
pub struct LinearParam {
    /// Weight, `in_dim x out_dim`.
    pub w: Matrix,
    /// Bias, length `out_dim` (empty when the parameter has no bias).
    pub b: Vec<f32>,
    /// Gradient of `w`.
    pub gw: Matrix,
    /// Gradient of `b`.
    pub gb: Vec<f32>,
}

impl LinearParam {
    /// Glorot-initialized parameter with bias.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        LinearParam {
            w: glorot_uniform(in_dim, out_dim, seed),
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(in_dim, out_dim),
            gb: vec![0.0; out_dim],
        }
    }

    /// Glorot-initialized parameter without bias.
    pub fn new_no_bias(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        LinearParam {
            w: glorot_uniform(in_dim, out_dim, seed),
            b: Vec::new(),
            gw: Matrix::zeros(in_dim, out_dim),
            gb: Vec::new(),
        }
    }

    /// Number of scalar parameters.
    pub fn count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw.as_mut_slice().fill(0.0);
        self.gb.fill(0.0);
    }
}

/// A vector parameter (attention weights) with gradient accumulator.
#[derive(Debug, Clone)]
pub struct VecParam {
    /// The parameter values.
    pub v: Vec<f32>,
    /// The gradient accumulator.
    pub g: Vec<f32>,
}

impl VecParam {
    /// Uniform-initialized vector parameter.
    pub fn new(len: usize, seed: u64) -> Self {
        VecParam { v: uniform_vec(len, 0.3, seed), g: vec![0.0; len] }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.g.fill(0.0);
    }
}

/// Mutable views over a layer's parameters, in a stable order, for the
/// optimizer.
pub enum ParamRef<'a> {
    /// A dense weight + bias parameter.
    Linear(&'a mut LinearParam),
    /// A vector parameter.
    Vector(&'a mut VecParam),
}

/// Common interface of all GNN layers.
pub trait Layer: std::fmt::Debug + Send {
    /// Input feature dimensionality.
    fn in_dim(&self) -> usize;
    /// Output feature dimensionality.
    fn out_dim(&self) -> usize;
    /// Forward pass over subgraph `g` with node features `x`
    /// (`g.num_nodes() x in_dim`); caches intermediates for backward.
    /// Temporaries come from (and should be returned to) `scratch`.
    fn forward(&mut self, g: &Graph, x: &Matrix, scratch: &mut ScratchArena) -> Matrix;
    /// Backward pass: consumes `grad_out`, accumulates parameter
    /// gradients, returns the gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    fn backward(&mut self, g: &Graph, grad_out: &Matrix, scratch: &mut ScratchArena) -> Matrix;
    /// Parameters in a stable order.
    fn params_mut(&mut self) -> Vec<ParamRef<'_>>;
    /// Streams the parameters to `f` in the same stable order as
    /// [`Layer::params_mut`], without allocating a `Vec` — the
    /// training hot path drives the optimizer through this form.
    fn for_each_param(&mut self, f: &mut dyn FnMut(ParamRef<'_>));
    /// Total scalar parameter count (`|Φ|` contribution).
    fn param_count(&self) -> usize;
    /// Clears all parameter gradients.
    fn zero_grad(&mut self);
}

/// Target FLOPs per worker chunk for the aggregation kernels.
const AGG_GRAIN_FLOPS: usize = 32_768;

/// Scheduling weight (one weight unit ≈ 2 FLOPs) a worker must carry
/// before the feature-wide aggregation passes fan out.
const AGG_GRAIN_WORK: u64 = (AGG_GRAIN_FLOPS / 2) as u64;

/// Grain for the feature-independent span passes (GAT softmax and its
/// backward), whose per-unit cost is a handful of transcendentals.
const AGG_GRAIN_SPAN: u64 = 4_096;

/// Feature-dimension tile width for heavy (single hub row) schedule
/// groups: a hub row at least `2 * FEAT_TILE` wide is split into
/// column tiles so several workers can share one giant neighbor list.
/// A column tile of a single row is contiguous in row-major layout,
/// so tiles carve into disjoint `&mut` windows like any other group.
const FEAT_TILE: usize = 64;

/// Nodes per static chunk for an aggregation over `g` with feature
/// width `d` — sized so a chunk is worth a worker, never a function of
/// the thread count.
fn agg_nodes_per_chunk(g: &Graph, d: usize) -> usize {
    let n = g.num_nodes().max(1);
    let per_node = 2 * (g.num_edges() / n + 1) * d.max(1);
    (AGG_GRAIN_FLOPS / per_node.max(1)).max(1)
}

/// One scheduled unit of aggregation work: output rows
/// `v0..v0 + dst.len() / (j1 - j0)`, columns `j0..j1`.
struct AggTask<'a> {
    v0: usize,
    j0: usize,
    j1: usize,
    dst: &'a mut [f32],
}

/// Carves the row-major `n x d` output `out` into one [`AggTask`] per
/// schedule group (heavy groups additionally split into [`FEAT_TILE`]
/// column tiles when `d` is wide), streamed to `emit` weighted for
/// [`gnnav_par::par_for_weighted_tasks_lazy`]. Group boundaries come
/// from the graph's cached degree schedule, so tasks are a pure
/// function of the graph and `d` — never of the thread count.
fn schedule_tasks<'a>(
    groups: &[AggGroup],
    d: usize,
    out: &'a mut [f32],
    emit: &mut dyn FnMut(u64, AggTask<'a>),
) {
    let mut rest = out;
    for grp in groups {
        let (win, tail) = rest.split_at_mut(grp.len() * d);
        rest = tail;
        if grp.heavy && d >= 2 * FEAT_TILE {
            let mut row = win;
            let mut j0 = 0usize;
            while j0 < d {
                let j1 = (j0 + FEAT_TILE).min(d);
                let (tile, row_tail) = row.split_at_mut(j1 - j0);
                row = row_tail;
                let task = AggTask { v0: grp.start as usize, j0, j1, dst: tile };
                emit(grp.work * (j1 - j0) as u64, task);
                j0 = j1;
            }
        } else {
            let task = AggTask { v0: grp.start as usize, j0: 0, j1: d, dst: win };
            emit(grp.work * d as u64, task);
        }
    }
}

/// Carves `a` and `b` into per-group mutable windows along the
/// schedule's group boundaries, where node `i`'s data spans
/// `a_off(i)..a_off(i+1)` in `a` (resp. `b_off` in `b`). Streams
/// weighted `(v0, v1, a_window, b_window)` tasks to `emit` for
/// [`gnnav_par::par_for_weighted_tasks_lazy`].
#[allow(clippy::type_complexity)]
fn split_two_by_groups<'a>(
    groups: &[AggGroup],
    a: &'a mut [f32],
    a_off: impl Fn(usize) -> usize,
    b: &'a mut [f32],
    b_off: impl Fn(usize) -> usize,
    emit: &mut dyn FnMut(u64, (usize, usize, &'a mut [f32], &'a mut [f32])),
) {
    let mut a = a;
    let mut b = b;
    for grp in groups {
        let (v0, v1) = (grp.start as usize, grp.end as usize);
        let (ha, ta) = a.split_at_mut(a_off(v1) - a_off(v0));
        let (hb, tb) = b.split_at_mut(b_off(v1) - b_off(v0));
        emit(grp.work, (v0, v1, ha, hb));
        a = ta;
        b = tb;
    }
}

/// Symmetric-normalized GCN aggregation with self-loops:
/// `out[v] = Σ_{u ∈ N(v) ∪ {v}} x[u] / sqrt((d_u + 1)(d_v + 1))`.
///
/// The coefficient matrix is symmetric, so the same routine implements
/// the backward (transpose) aggregation.
pub fn gcn_aggregate(g: &Graph, x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(g.num_nodes(), x.cols());
    gcn_aggregate_into(g, x, &mut out);
    out
}

/// [`gcn_aggregate`] into a caller-provided output (fully
/// overwritten). Node-parallel; uses the graph's cached inverse-sqrt
/// degree norms instead of recomputing them per call.
///
/// # Panics
///
/// Panics if `out` is not `g.num_nodes() x x.cols()` or `x` has the
/// wrong number of rows.
pub fn gcn_aggregate_into(g: &Graph, x: &Matrix, out: &mut Matrix) {
    let n = g.num_nodes();
    let d = x.cols();
    assert_eq!(x.rows(), n, "one feature row per node");
    assert_eq!((out.rows(), out.cols()), (n, d), "gcn_aggregate out shape mismatch");
    out.as_mut_slice().fill(0.0);
    if n == 0 || d == 0 {
        return;
    }
    let inv_sqrt = g.gcn_inv_sqrt();
    let groups = &g.agg_schedule().fwd.groups;
    let out = out.as_mut_slice();
    gnnav_par::par_for_weighted_tasks_lazy(
        groups.len(),
        |emit| schedule_tasks(groups, d, out, emit),
        AGG_GRAIN_WORK,
        |task| {
            let w = task.j1 - task.j0;
            for (lv, dst) in task.dst.chunks_mut(w).enumerate() {
                let v = (task.v0 + lv) as u32;
                let cv = inv_sqrt[v as usize];
                // Self-loop term first, then neighbors ascending — the
                // same per-element accumulation order as the serial
                // kernel, whatever the grouping or column tiling.
                axpy1(dst, cv * cv, &x.row(v as usize)[task.j0..task.j1]);
                for &u in g.neighbors(v) {
                    axpy1(dst, cv * inv_sqrt[u as usize], &x.row(u as usize)[task.j0..task.j1]);
                }
            }
        },
    );
}

/// Mean aggregation: `out[v] = mean_{u ∈ N(v)} x[u]` (zero for
/// isolated nodes).
pub fn mean_aggregate(g: &Graph, x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(g.num_nodes(), x.cols());
    mean_aggregate_into(g, x, &mut out);
    out
}

/// [`mean_aggregate`] into a caller-provided output (fully
/// overwritten), node-parallel.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mean_aggregate_into(g: &Graph, x: &Matrix, out: &mut Matrix) {
    let n = g.num_nodes();
    let d = x.cols();
    assert_eq!(x.rows(), n, "one feature row per node");
    assert_eq!((out.rows(), out.cols()), (n, d), "mean_aggregate out shape mismatch");
    out.as_mut_slice().fill(0.0);
    if n == 0 || d == 0 {
        return;
    }
    let groups = &g.agg_schedule().fwd.groups;
    let out = out.as_mut_slice();
    gnnav_par::par_for_weighted_tasks_lazy(
        groups.len(),
        |emit| schedule_tasks(groups, d, out, emit),
        AGG_GRAIN_WORK,
        |task| {
            let w = task.j1 - task.j0;
            for (lv, dst) in task.dst.chunks_mut(w).enumerate() {
                let v = (task.v0 + lv) as u32;
                let neigh = g.neighbors(v);
                if neigh.is_empty() {
                    // Isolated node: the row stays exactly zero.
                    continue;
                }
                let inv = 1.0 / neigh.len() as f32;
                for &u in neigh {
                    for (o, &s) in dst.iter_mut().zip(&x.row(u as usize)[task.j0..task.j1]) {
                        *o += s;
                    }
                }
                for o in dst.iter_mut() {
                    *o *= inv;
                }
            }
        },
    );
}

/// Transpose of [`mean_aggregate`]: node `u` receives
/// `grad_out[v] / deg(v)` from every `v` it neighbors.
pub fn mean_aggregate_backward(g: &Graph, grad_out: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(g.num_nodes(), grad_out.cols());
    mean_aggregate_backward_into(g, grad_out, &mut out);
    out
}

/// [`mean_aggregate_backward`] into a caller-provided output (fully
/// overwritten). The textbook scatter is rewritten as a per-row
/// gather over the cached transpose CSR: in-edge sources arrive
/// sorted ascending, which is the order the serial scatter added
/// them, so the result is bitwise identical — and each output row is
/// owned by one worker.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mean_aggregate_backward_into(g: &Graph, grad_out: &Matrix, out: &mut Matrix) {
    let n = g.num_nodes();
    let d = grad_out.cols();
    assert_eq!(grad_out.rows(), n, "one gradient row per node");
    assert_eq!((out.rows(), out.cols()), (n, d), "mean_aggregate_backward out shape mismatch");
    out.as_mut_slice().fill(0.0);
    if n == 0 || d == 0 {
        return;
    }
    let t = g.transpose_csr();
    // Backward gathers walk in-edges, so grouping follows in-degrees.
    let groups = &g.agg_schedule().bwd.groups;
    let out = out.as_mut_slice();
    gnnav_par::par_for_weighted_tasks_lazy(
        groups.len(),
        |emit| schedule_tasks(groups, d, out, emit),
        AGG_GRAIN_WORK,
        |task| {
            let w = task.j1 - task.j0;
            for (lu, dst) in task.dst.chunks_mut(w).enumerate() {
                let u = (task.v0 + lu) as u32;
                for &v in t.in_sources(u) {
                    // Every in-source has at least the edge v -> u, so
                    // degree(v) >= 1 and the divide is finite.
                    let inv = 1.0 / g.degree(v) as f32;
                    axpy1(dst, inv, &grad_out.row(v as usize)[task.j0..task.j1]);
                }
            }
        },
    );
}

/// GCN layer: `out = GcnAgg(g, x) · W + b`.
#[derive(Debug)]
pub struct GcnLayer {
    lin: LinearParam,
    cache_ax: Option<Matrix>,
}

impl GcnLayer {
    /// Creates a GCN layer with Glorot-initialized weights.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        GcnLayer { lin: LinearParam::new(in_dim, out_dim, seed), cache_ax: None }
    }
}

impl Layer for GcnLayer {
    fn in_dim(&self) -> usize {
        self.lin.w.rows()
    }

    fn out_dim(&self) -> usize {
        self.lin.w.cols()
    }

    fn forward(&mut self, g: &Graph, x: &Matrix, scratch: &mut ScratchArena) -> Matrix {
        let n = g.num_nodes();
        let mut ax = match self.cache_ax.take() {
            Some(prev) => scratch.reshape_zeroed(prev, n, x.cols()),
            None => scratch.take(n, x.cols()),
        };
        gcn_aggregate_into(g, x, &mut ax);
        let mut out = scratch.take(n, self.out_dim());
        ax.matmul_into(&self.lin.w, &mut out);
        out.add_row_broadcast(&self.lin.b);
        self.cache_ax = Some(ax);
        out
    }

    fn backward(&mut self, g: &Graph, grad_out: &Matrix, scratch: &mut ScratchArena) -> Matrix {
        let ax = self.cache_ax.as_ref().expect("forward before backward");
        let mut gw = scratch.take(self.lin.w.rows(), self.lin.w.cols());
        ax.matmul_at_b_into(grad_out, &mut gw);
        self.lin.gw.add_assign(&gw);
        scratch.recycle(gw);
        for r in 0..grad_out.rows() {
            for (gb, &gv) in self.lin.gb.iter_mut().zip(grad_out.row(r)) {
                *gb += gv;
            }
        }
        let mut d_ax = scratch.take(grad_out.rows(), self.in_dim());
        grad_out.matmul_a_bt_into(&self.lin.w, &mut d_ax);
        // Symmetric coefficients: the transpose aggregation is the
        // forward aggregation.
        let mut gx = scratch.take(g.num_nodes(), self.in_dim());
        gcn_aggregate_into(g, &d_ax, &mut gx);
        scratch.recycle(d_ax);
        gx
    }

    fn params_mut(&mut self) -> Vec<ParamRef<'_>> {
        vec![ParamRef::Linear(&mut self.lin)]
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(ParamRef<'_>)) {
        f(ParamRef::Linear(&mut self.lin));
    }

    fn param_count(&self) -> usize {
        self.lin.count()
    }

    fn zero_grad(&mut self) {
        self.lin.zero_grad();
    }
}

/// GraphSAGE layer with mean aggregator:
/// `out = x · W_self + MeanAgg(g, x) · W_neigh + b`.
#[derive(Debug)]
pub struct SageLayer {
    lin_self: LinearParam,
    lin_neigh: LinearParam,
    cache_x: Option<Matrix>,
    cache_mean: Option<Matrix>,
}

impl SageLayer {
    /// Creates a SAGE layer with Glorot-initialized weights.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        SageLayer {
            lin_self: LinearParam::new(in_dim, out_dim, seed),
            lin_neigh: LinearParam::new_no_bias(in_dim, out_dim, seed.wrapping_add(1)),
            cache_x: None,
            cache_mean: None,
        }
    }
}

impl Layer for SageLayer {
    fn in_dim(&self) -> usize {
        self.lin_self.w.rows()
    }

    fn out_dim(&self) -> usize {
        self.lin_self.w.cols()
    }

    fn forward(&mut self, g: &Graph, x: &Matrix, scratch: &mut ScratchArena) -> Matrix {
        let n = g.num_nodes();
        let mut mean = match self.cache_mean.take() {
            Some(prev) => scratch.reshape_zeroed(prev, n, x.cols()),
            None => scratch.take(n, x.cols()),
        };
        mean_aggregate_into(g, x, &mut mean);
        let mut out = scratch.take(n, self.out_dim());
        x.matmul_into(&self.lin_self.w, &mut out);
        let mut neigh = scratch.take(n, self.out_dim());
        mean.matmul_into(&self.lin_neigh.w, &mut neigh);
        out.add_assign(&neigh);
        scratch.recycle(neigh);
        out.add_row_broadcast(&self.lin_self.b);
        scratch.cache_copy(&mut self.cache_x, x);
        self.cache_mean = Some(mean);
        out
    }

    fn backward(&mut self, g: &Graph, grad_out: &Matrix, scratch: &mut ScratchArena) -> Matrix {
        let x = self.cache_x.as_ref().expect("forward before backward");
        let mean = self.cache_mean.as_ref().expect("forward before backward");
        let mut gw = scratch.take(self.lin_self.w.rows(), self.lin_self.w.cols());
        x.matmul_at_b_into(grad_out, &mut gw);
        self.lin_self.gw.add_assign(&gw);
        mean.matmul_at_b_into(grad_out, &mut gw);
        self.lin_neigh.gw.add_assign(&gw);
        scratch.recycle(gw);
        for r in 0..grad_out.rows() {
            for (gb, &gv) in self.lin_self.gb.iter_mut().zip(grad_out.row(r)) {
                *gb += gv;
            }
        }
        let mut grad_x = scratch.take(grad_out.rows(), self.in_dim());
        grad_out.matmul_a_bt_into(&self.lin_self.w, &mut grad_x);
        let mut d_mean = scratch.take(grad_out.rows(), self.in_dim());
        grad_out.matmul_a_bt_into(&self.lin_neigh.w, &mut d_mean);
        let mut bwd = scratch.take(g.num_nodes(), self.in_dim());
        mean_aggregate_backward_into(g, &d_mean, &mut bwd);
        grad_x.add_assign(&bwd);
        scratch.recycle(bwd);
        scratch.recycle(d_mean);
        grad_x
    }

    fn params_mut(&mut self) -> Vec<ParamRef<'_>> {
        vec![ParamRef::Linear(&mut self.lin_self), ParamRef::Linear(&mut self.lin_neigh)]
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(ParamRef<'_>)) {
        f(ParamRef::Linear(&mut self.lin_self));
        f(ParamRef::Linear(&mut self.lin_neigh));
    }

    fn param_count(&self) -> usize {
        self.lin_self.count() + self.lin_neigh.count()
    }

    fn zero_grad(&mut self) {
        self.lin_self.zero_grad();
        self.lin_neigh.zero_grad();
    }
}

const LEAKY_SLOPE: f32 = 0.2;

/// Single-head GAT layer with additive attention:
///
/// `e_uv = LeakyReLU(a_l · (W x_u) + a_r · (W x_v))`,
/// `α_·v = softmax_u(e_uv)` over `u ∈ N(v) ∪ {v}`,
/// `out[v] = Σ_u α_uv (W x_u) + b`.
#[derive(Debug)]
pub struct GatLayer {
    lin: LinearParam,
    att_l: VecParam,
    att_r: VecParam,
    cache: Option<GatCache>,
}

#[derive(Debug)]
struct GatCache {
    x: Matrix,
    z: Matrix,
    /// Flattened attention weights: for node `v`, entries
    /// `alpha_off[v]..alpha_off[v+1]` cover `N(v)` then the self term.
    alpha: Vec<f32>,
    /// Pre-activation LeakyReLU inputs aligned with `alpha`.
    pre: Vec<f32>,
    alpha_off: Vec<usize>,
}

impl GatLayer {
    /// Creates a GAT layer with Glorot weights and uniform attention
    /// vectors.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        GatLayer {
            lin: LinearParam::new(in_dim, out_dim, seed),
            att_l: VecParam::new(out_dim, seed.wrapping_add(2)),
            att_r: VecParam::new(out_dim, seed.wrapping_add(3)),
            cache: None,
        }
    }
}

fn leaky(x: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        LEAKY_SLOPE * x
    }
}

fn leaky_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        LEAKY_SLOPE
    }
}

/// Numerically stable softmax over one attention neighborhood:
/// `alpha[i] = exp(leaky(pre[i]) - max) / Σ exp(leaky(pre[j]) - max)`.
///
/// Subtracting the span maximum keeps every exponent `<= 0`, so large
/// logits can never overflow to `inf` and poison the normalization
/// with `inf / inf = NaN`. When the maximum activation is exactly
/// `0.0` the subtraction is bitwise invisible (`x - 0.0 == x` for
/// finite `x`), which is what lets the stability test pin the stable
/// path against the naive one bit for bit.
///
/// # Panics
///
/// Panics if `pre` and `alpha` differ in length (callers pass spans
/// carved from the same `alpha_off` table). Spans are never empty:
/// every neighborhood contains at least the self term.
fn neighborhood_softmax(pre: &[f32], alpha: &mut [f32]) {
    assert_eq!(pre.len(), alpha.len(), "attention span length mismatch");
    let mut max = f32::NEG_INFINITY;
    for &p in pre {
        max = max.max(leaky(p));
    }
    let mut sum = 0.0f32;
    for (a, &p) in alpha.iter_mut().zip(pre) {
        let e = (leaky(p) - max).exp();
        *a = e;
        sum += e;
    }
    for a in alpha.iter_mut() {
        *a /= sum;
    }
}

/// The textbook softmax without max-subtraction — overflows for large
/// logits. Kept only as the reference the stability test compares
/// against.
#[cfg(test)]
fn neighborhood_softmax_naive(pre: &[f32], alpha: &mut [f32]) {
    let mut sum = 0.0f32;
    for (a, &p) in alpha.iter_mut().zip(pre) {
        let e = leaky(p).exp();
        *a = e;
        sum += e;
    }
    for a in alpha.iter_mut() {
        *a /= sum;
    }
}

impl Layer for GatLayer {
    fn in_dim(&self) -> usize {
        self.lin.w.rows()
    }

    fn out_dim(&self) -> usize {
        self.lin.w.cols()
    }

    fn forward(&mut self, g: &Graph, x: &Matrix, scratch: &mut ScratchArena) -> Matrix {
        let n = g.num_nodes();
        let d = self.out_dim();
        // Reuse the previous cache's storage wholesale.
        let (mut z, mut alpha, mut pre, mut alpha_off, mut cached_x) = match self.cache.take() {
            Some(GatCache { x, z, alpha, pre, alpha_off }) => {
                (scratch.reshape_zeroed(z, n, d), alpha, pre, alpha_off, Some(x))
            }
            None => (scratch.take(n, d), Vec::new(), Vec::new(), Vec::new(), None),
        };
        x.matmul_into(&self.lin.w, &mut z);
        let mut s_l = scratch.take_raw(n);
        let mut s_r = scratch.take_raw(n);
        {
            let att_l = &self.att_l.v;
            let att_r = &self.att_r.v;
            let z = &z;
            let grain = agg_nodes_per_chunk(g, d);
            gnnav_par::par_chunks(&mut s_l, 1, grain, |v, slot| {
                slot[0] = dot_lanes(z.row(v), att_l);
            });
            gnnav_par::par_chunks(&mut s_r, 1, grain, |v, slot| {
                slot[0] = dot_lanes(z.row(v), att_r);
            });
        }

        alpha_off.clear();
        alpha_off.reserve(n + 1);
        alpha_off.push(0usize);
        pre.clear();
        pre.reserve(g.num_edges() + n);
        for v in 0..n as u32 {
            for &u in g.neighbors(v) {
                pre.push(leakish_input(s_l[u as usize], s_r[v as usize]));
            }
            pre.push(leakish_input(s_l[v as usize], s_r[v as usize])); // self
            alpha_off.push(pre.len());
        }
        alpha.clear();
        alpha.resize(pre.len(), 0.0);

        // Pass 1: per-neighborhood stable softmax over disjoint alpha
        // spans, carved along the schedule's group boundaries. Span
        // lengths per group sum to exactly the group's work (deg + 1
        // per node).
        {
            let pre = &pre;
            let alpha_off = &alpha_off;
            let groups = &g.agg_schedule().fwd.groups;
            let alpha_out = alpha.as_mut_slice();
            gnnav_par::par_for_weighted_tasks_lazy(
                groups.len(),
                |emit| {
                    let mut rest = alpha_out;
                    for grp in groups {
                        let (v0, v1) = (grp.start as usize, grp.end as usize);
                        let (win, tail) = rest.split_at_mut(alpha_off[v1] - alpha_off[v0]);
                        rest = tail;
                        emit(grp.work, (v0, v1, win));
                    }
                },
                AGG_GRAIN_SPAN,
                |(v0, v1, alpha_run)| {
                    let mut cursor = 0usize;
                    for v in v0..v1 {
                        let (start, end) = (alpha_off[v], alpha_off[v + 1]);
                        let count = end - start;
                        neighborhood_softmax(
                            &pre[start..end],
                            &mut alpha_run[cursor..cursor + count],
                        );
                        cursor += count;
                    }
                },
            );
        }

        // Pass 2: out[v] = Σ α z[u] + bias over neighbors then self,
        // schedule-grouped with column tiling for hub rows (alpha is
        // read-only here, so tiles of one row can run concurrently).
        let mut out = scratch.take(n, d);
        if d > 0 {
            let bias = &self.lin.b;
            let z = &z;
            let alpha = &alpha;
            let alpha_off = &alpha_off;
            let groups = &g.agg_schedule().fwd.groups;
            let out = out.as_mut_slice();
            gnnav_par::par_for_weighted_tasks_lazy(
                groups.len(),
                |emit| schedule_tasks(groups, d, out, emit),
                AGG_GRAIN_WORK,
                |task| {
                    let w = task.j1 - task.j0;
                    for (lv, out_row) in task.dst.chunks_mut(w).enumerate() {
                        let v = task.v0 + lv;
                        let (start, end) = (alpha_off[v], alpha_off[v + 1]);
                        let aspan = &alpha[start..end];
                        for (i, &u) in g.neighbors(v as u32).iter().enumerate() {
                            axpy1(out_row, aspan[i], &z.row(u as usize)[task.j0..task.j1]);
                        }
                        axpy1(out_row, aspan[aspan.len() - 1], &z.row(v)[task.j0..task.j1]);
                        for (o, &b) in out_row.iter_mut().zip(&bias[task.j0..task.j1]) {
                            *o += b;
                        }
                    }
                },
            );
        }
        scratch.recycle_raw(s_l);
        scratch.recycle_raw(s_r);
        scratch.cache_copy(&mut cached_x, x);
        self.cache =
            Some(GatCache { x: cached_x.expect("cache_copy fills"), z, alpha, pre, alpha_off });
        out
    }

    fn backward(&mut self, g: &Graph, grad_out: &Matrix, scratch: &mut ScratchArena) -> Matrix {
        let cache = self.cache.as_ref().expect("forward before backward");
        let n = g.num_nodes();
        let d = self.out_dim();
        let GatCache { x, z, alpha, pre, alpha_off } = cache;

        let mut dz = scratch.take(n, d);
        let mut ds_l = scratch.take_raw(n);
        let mut ds_r = scratch.take_raw(n);
        let mut dpre = scratch.take_raw(alpha.len());

        // Bias gradient.
        for r in 0..n {
            for (gb, &gv) in self.lin.gb.iter_mut().zip(grad_out.row(r)) {
                *gb += gv;
            }
        }

        // Softmax backward, parallel over destination neighborhoods:
        // d_alpha -> de -> dpre (disjoint spans of `dpre`), plus the
        // per-destination score gradient ds_r[v]. Carved along the
        // forward schedule's group boundaries.
        {
            let groups = &g.agg_schedule().fwd.groups;
            let dpre_out = dpre.as_mut_slice();
            let dsr_out = ds_r.as_mut_slice();
            gnnav_par::par_for_weighted_tasks_lazy(
                groups.len(),
                |emit| {
                    split_two_by_groups(groups, dpre_out, |i| alpha_off[i], dsr_out, |i| i, emit)
                },
                AGG_GRAIN_SPAN,
                |(v0, _v1, dpre_run, dsr_run)| {
                    let mut cursor = 0usize;
                    for (lv, dsr) in dsr_run.iter_mut().enumerate() {
                        let v = v0 + lv;
                        let (start, end) = (alpha_off[v], alpha_off[v + 1]);
                        let count = end - start;
                        let go = grad_out.row(v);
                        let dslice = &mut dpre_run[cursor..cursor + count];
                        cursor += count;
                        for (i, &u) in g.neighbors(v as u32).iter().enumerate() {
                            dslice[i] = dot_lanes(go, z.row(u as usize));
                        }
                        dslice[count - 1] = dot_lanes(go, z.row(v));
                        let sdot: f32 = (0..count).map(|i| alpha[start + i] * dslice[i]).sum();
                        let mut acc = 0.0f32;
                        for (i, dp) in dslice.iter_mut().enumerate() {
                            let de = alpha[start + i] * (*dp - sdot);
                            let dpv = de * leaky_grad(pre[start + i]);
                            *dp = dpv;
                            acc += dpv;
                        }
                        *dsr = acc;
                    }
                },
            );
        }

        // dz and ds_l, parallel over sources `u` along the *backward*
        // (in-degree) schedule groups: the serial kernel scattered
        // `α·go_v` and `dpre` from each destination v; gathering over
        // the transpose's ascending in-sources (with the self term
        // merged at v == u) reproduces the exact per-element add
        // order. No column tiling here — ds_l[u] is a full-row
        // reduction, so a row must stay within one task.
        {
            let t = g.transpose_csr();
            let groups = &g.agg_schedule().bwd.groups;
            let dz_out = dz.as_mut_slice();
            let dsl_out = ds_l.as_mut_slice();
            gnnav_par::par_for_weighted_tasks_lazy(
                groups.len(),
                |emit| split_two_by_groups(groups, dz_out, |i| i * d, dsl_out, |i| i, emit),
                AGG_GRAIN_SPAN,
                |(u0, _u1, dz_run, dsl_run)| {
                    for (lu, dsl) in dsl_run.iter_mut().enumerate() {
                        let u = u0 + lu;
                        let dz_row = &mut dz_run[lu * d..(lu + 1) * d];
                        let sources = t.in_sources(u as u32);
                        let edges = t.in_forward_edges(u as u32);
                        // The serial scatter touched u once per destination
                        // block, v ascending, with u's own self term at
                        // v == u *after* any in-edge from v == u.
                        let cut = sources.partition_point(|&v| v <= u as u32);
                        let mut acc = 0.0f32;
                        let mut take = |alpha_idx: usize, src: usize| {
                            let a = alpha[alpha_idx];
                            for (o, &gv) in dz_row.iter_mut().zip(grad_out.row(src)) {
                                *o += a * gv;
                            }
                            acc += dpre[alpha_idx];
                        };
                        for i in 0..cut {
                            // alpha index of forward edge e from source v:
                            // alpha_off[v] + (e - offsets[v]) == e + v.
                            take(edges[i] + sources[i] as usize, sources[i] as usize);
                        }
                        take(alpha_off[u + 1] - 1, u);
                        for i in cut..sources.len() {
                            take(edges[i] + sources[i] as usize, sources[i] as usize);
                        }
                        *dsl = acc;
                    }
                },
            );
        }

        // s_l[u] = z[u]·a_l and s_r[u] = z[u]·a_r. The attention
        // parameter gradients are ordered reductions over u — serial.
        for u in 0..n {
            let zu = z.row(u);
            for ((ga, &zz), (gb, _)) in
                self.att_l.g.iter_mut().zip(zu).zip(self.att_r.g.iter_mut().zip(zu))
            {
                *ga += ds_l[u] * zz;
                *gb += ds_r[u] * zz;
            }
            let dzu = dz.row_mut(u);
            for ((o, &al), &ar) in dzu.iter_mut().zip(&self.att_l.v).zip(&self.att_r.v) {
                *o += ds_l[u] * al + ds_r[u] * ar;
            }
        }

        let mut gw = scratch.take(self.lin.w.rows(), self.lin.w.cols());
        x.matmul_at_b_into(&dz, &mut gw);
        self.lin.gw.add_assign(&gw);
        scratch.recycle(gw);
        let mut gx = scratch.take(n, self.in_dim());
        dz.matmul_a_bt_into(&self.lin.w, &mut gx);
        scratch.recycle(dz);
        scratch.recycle_raw(ds_l);
        scratch.recycle_raw(ds_r);
        scratch.recycle_raw(dpre);
        gx
    }

    fn params_mut(&mut self) -> Vec<ParamRef<'_>> {
        vec![
            ParamRef::Linear(&mut self.lin),
            ParamRef::Vector(&mut self.att_l),
            ParamRef::Vector(&mut self.att_r),
        ]
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(ParamRef<'_>)) {
        f(ParamRef::Linear(&mut self.lin));
        f(ParamRef::Vector(&mut self.att_l));
        f(ParamRef::Vector(&mut self.att_r));
    }

    fn param_count(&self) -> usize {
        self.lin.count() + self.att_l.v.len() + self.att_r.v.len()
    }

    fn zero_grad(&mut self) {
        self.lin.zero_grad();
        self.att_l.zero_grad();
        self.att_r.zero_grad();
    }
}

/// The raw (pre-LeakyReLU) attention logit for source score `sl` and
/// destination score `sr`. Kept as a function so forward and backward
/// agree on the definition.
#[inline]
fn leakish_input(sl: f32, sr: f32) -> f32 {
    sl + sr
}

/// Multi-head GAT layer: `H` independent [`GatLayer`] heads whose
/// outputs are *averaged* (the aggregation the GAT paper uses on its
/// output layer; averaging keeps the layer's output width equal to
/// `out_dim`, so heads compose transparently in a [`crate::GnnModel`]
/// stack).
#[derive(Debug)]
pub struct MultiHeadGatLayer {
    heads: Vec<GatLayer>,
}

impl MultiHeadGatLayer {
    /// Creates a layer with `num_heads` attention heads.
    ///
    /// # Panics
    ///
    /// Panics if `num_heads == 0`.
    pub fn new(in_dim: usize, out_dim: usize, num_heads: usize, seed: u64) -> Self {
        assert!(num_heads > 0, "at least one head required");
        let heads = (0..num_heads)
            .map(|h| GatLayer::new(in_dim, out_dim, seed.wrapping_add(31 * h as u64)))
            .collect();
        MultiHeadGatLayer { heads }
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }
}

impl Layer for MultiHeadGatLayer {
    fn in_dim(&self) -> usize {
        self.heads[0].in_dim()
    }

    fn out_dim(&self) -> usize {
        self.heads[0].out_dim()
    }

    fn forward(&mut self, g: &Graph, x: &Matrix, scratch: &mut ScratchArena) -> Matrix {
        let inv = 1.0 / self.heads.len() as f32;
        let mut acc: Option<Matrix> = None;
        for head in &mut self.heads {
            let out = head.forward(g, x, scratch);
            match &mut acc {
                None => acc = Some(out),
                Some(a) => {
                    a.add_assign(&out);
                    scratch.recycle(out);
                }
            }
        }
        let mut out = acc.expect("at least one head");
        out.scale(inv);
        out
    }

    fn backward(&mut self, g: &Graph, grad_out: &Matrix, scratch: &mut ScratchArena) -> Matrix {
        let inv = 1.0 / self.heads.len() as f32;
        let mut scaled = scratch.take(grad_out.rows(), grad_out.cols());
        scaled.as_mut_slice().copy_from_slice(grad_out.as_slice());
        scaled.scale(inv);
        let mut acc: Option<Matrix> = None;
        for head in &mut self.heads {
            let gx = head.backward(g, &scaled, scratch);
            match &mut acc {
                None => acc = Some(gx),
                Some(a) => {
                    a.add_assign(&gx);
                    scratch.recycle(gx);
                }
            }
        }
        scratch.recycle(scaled);
        acc.expect("at least one head")
    }

    fn params_mut(&mut self) -> Vec<ParamRef<'_>> {
        self.heads.iter_mut().flat_map(|h| h.params_mut()).collect()
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(ParamRef<'_>)) {
        for h in &mut self.heads {
            h.for_each_param(f);
        }
    }

    fn param_count(&self) -> usize {
        self.heads.iter().map(|h| h.param_count()).sum()
    }

    fn zero_grad(&mut self) {
        for head in &mut self.heads {
            head.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnav_graph::GraphBuilder;

    fn tiny_graph() -> Graph {
        // 4 nodes: triangle 0-1-2 plus edge 2-3, undirected.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2).add_edge(2, 3);
        b.symmetrize().build().expect("build")
    }

    fn tiny_x(seed: u64) -> Matrix {
        glorot_uniform(4, 3, seed)
    }

    use crate::init::glorot_uniform;

    #[test]
    fn gcn_aggregate_row_is_weighted_sum() {
        let g = tiny_graph();
        let x = Matrix::eye(4);
        let ax = gcn_aggregate(&g, &x);
        // Row 3: self (deg 1): 1/2; neighbor 2 (deg 3): 1/(sqrt(2)*sqrt(4)).
        assert!((ax.get(3, 3) - 0.5).abs() < 1e-6);
        assert!((ax.get(3, 2) - 1.0 / (2.0f32.sqrt() * 2.0)).abs() < 1e-6);
        assert_eq!(ax.get(3, 0), 0.0);
    }

    #[test]
    fn mean_aggregate_averages_neighbors() {
        let g = tiny_graph();
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let m = mean_aggregate(&g, &x);
        // Node 0 neighbors {1, 2}: mean 2.5.
        assert!((m.get(0, 0) - 2.5).abs() < 1e-6);
        // Node 3 neighbors {2}: 3.0.
        assert!((m.get(3, 0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn mean_backward_is_transpose() {
        // <Agg x, y> == <x, AggT y> for random x, y.
        let g = tiny_graph();
        let x = glorot_uniform(4, 3, 1);
        let y = glorot_uniform(4, 3, 2);
        let fwd = mean_aggregate(&g, &x);
        let bwd = mean_aggregate_backward(&g, &y);
        let ip = |a: &Matrix, b: &Matrix| -> f32 {
            a.as_slice().iter().zip(b.as_slice()).map(|(p, q)| p * q).sum()
        };
        assert!((ip(&fwd, &y) - ip(&x, &bwd)).abs() < 1e-4);
    }

    #[test]
    fn gcn_aggregate_is_self_adjoint() {
        let g = tiny_graph();
        let x = glorot_uniform(4, 2, 3);
        let y = glorot_uniform(4, 2, 4);
        let ip = |a: &Matrix, b: &Matrix| -> f32 {
            a.as_slice().iter().zip(b.as_slice()).map(|(p, q)| p * q).sum()
        };
        assert!((ip(&gcn_aggregate(&g, &x), &y) - ip(&x, &gcn_aggregate(&g, &y))).abs() < 1e-4);
    }

    /// Finite-difference gradient check for a layer: perturb inputs and
    /// weights, compare with analytic gradients under loss
    /// `L = Σ out ⊙ R` for a fixed random `R`.
    fn grad_check<L: Layer>(mut layer: L, tol: f32) {
        let g = tiny_graph();
        let x = tiny_x(7);
        let r = glorot_uniform(4, layer.out_dim(), 8);
        let mut scratch = ScratchArena::new();

        let out = layer.forward(&g, &x, &mut scratch);
        let _loss0: f32 = out.as_slice().iter().zip(r.as_slice()).map(|(a, b)| a * b).sum();
        layer.zero_grad();
        let grad_x = layer.backward(&g, &r, &mut scratch);

        let eps = 1e-2f32;
        // Check d L / d x at a few positions.
        for &(rr, cc) in &[(0usize, 0usize), (2, 1), (3, 2)] {
            let mut xp = x.clone();
            xp.set(rr, cc, xp.get(rr, cc) + eps);
            let op = layer.forward(&g, &xp, &mut scratch);
            let lp: f32 = op.as_slice().iter().zip(r.as_slice()).map(|(a, b)| a * b).sum();
            let mut xm = x.clone();
            xm.set(rr, cc, xm.get(rr, cc) - eps);
            let om = layer.forward(&g, &xm, &mut scratch);
            let lm: f32 = om.as_slice().iter().zip(r.as_slice()).map(|(a, b)| a * b).sum();
            let fd = (lp - lm) / (2.0 * eps);
            let an = grad_x.get(rr, cc);
            assert!(
                (fd - an).abs() < tol * (1.0 + fd.abs().max(an.abs())),
                "input grad mismatch at ({rr},{cc}): fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn gcn_gradient_check() {
        grad_check(GcnLayer::new(3, 2, 11), 2e-2);
    }

    #[test]
    fn sage_gradient_check() {
        grad_check(SageLayer::new(3, 2, 12), 2e-2);
    }

    #[test]
    fn gat_gradient_check() {
        grad_check(GatLayer::new(3, 2, 13), 5e-2);
    }

    #[test]
    fn gat_weight_gradient_check() {
        // Finite-difference check on one weight entry of the GAT layer
        // (the trickiest gradient path: attention + combine).
        let g = tiny_graph();
        let x = tiny_x(20);
        let r = glorot_uniform(4, 2, 21);
        let mut layer = GatLayer::new(3, 2, 22);
        let mut scratch = ScratchArena::new();
        layer.forward(&g, &x, &mut scratch);
        layer.zero_grad();
        layer.backward(&g, &r, &mut scratch);
        let analytic = layer.lin.gw.get(1, 0);

        let eps = 1e-2f32;
        let orig = layer.lin.w.get(1, 0);
        layer.lin.w.set(1, 0, orig + eps);
        let lp: f32 = layer
            .forward(&g, &x, &mut scratch)
            .as_slice()
            .iter()
            .zip(r.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        layer.lin.w.set(1, 0, orig - eps);
        let lm: f32 = layer
            .forward(&g, &x, &mut scratch)
            .as_slice()
            .iter()
            .zip(r.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let fd = (lp - lm) / (2.0 * eps);
        assert!((fd - analytic).abs() < 5e-2 * (1.0 + fd.abs()), "fd {fd} vs analytic {analytic}");
    }

    #[test]
    fn layer_dims_reported() {
        let l = SageLayer::new(5, 7, 1);
        assert_eq!(l.in_dim(), 5);
        assert_eq!(l.out_dim(), 7);
        assert_eq!(l.param_count(), 5 * 7 + 7 + 5 * 7);
    }

    #[test]
    #[should_panic(expected = "forward before backward")]
    fn backward_requires_forward() {
        let g = tiny_graph();
        let mut l = GcnLayer::new(3, 2, 1);
        let _ = l.backward(&g, &Matrix::zeros(4, 2), &mut ScratchArena::new());
    }

    #[test]
    fn gat_attention_sums_to_one() {
        let g = tiny_graph();
        let x = tiny_x(30);
        let mut l = GatLayer::new(3, 2, 31);
        l.forward(&g, &x, &mut ScratchArena::new());
        let cache = l.cache.as_ref().expect("cached");
        for v in 0..4 {
            let (s, e) = (cache.alpha_off[v], cache.alpha_off[v + 1]);
            let sum: f32 = cache.alpha[s..e].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "node {v} alpha sum {sum}");
        }
    }

    /// Graph with a connected core (0-1-2 triangle) and three isolated
    /// nodes (3, 4, 5) — empty neighbor lists in both directions.
    fn isolated_graph() -> Graph {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        b.symmetrize().build().expect("build")
    }

    #[test]
    fn isolated_nodes_stay_finite_in_every_kernel() {
        let g = isolated_graph();
        let x = glorot_uniform(6, 5, 70);

        // Free aggregation kernels: no NaN/inf anywhere, and the
        // isolated rows take their defined values (self-loop only for
        // GCN — coefficient 1/sqrt(0+1)^2 == 1 — and exactly zero for
        // the mean and its transpose).
        let ax = gcn_aggregate(&g, &x);
        let m = mean_aggregate(&g, &x);
        let mb = mean_aggregate_backward(&g, &x);
        for (label, out) in [("gcn", &ax), ("mean", &m), ("mean_bwd", &mb)] {
            assert!(out.as_slice().iter().all(|v| v.is_finite()), "{label} produced non-finite");
        }
        for v in 3..6 {
            for c in 0..5 {
                assert_eq!(ax.get(v, c).to_bits(), x.get(v, c).to_bits(), "gcn isolated row");
                assert_eq!(m.get(v, c), 0.0, "mean isolated row");
                assert_eq!(mb.get(v, c), 0.0, "mean_bwd isolated row");
            }
        }

        // Every layer's forward AND backward must survive empty
        // neighbor lists without NaN/inf (the GAT neighborhood still
        // contains the self term, so its softmax span is never empty).
        let r = glorot_uniform(6, 2, 71);
        let mut scratch = ScratchArena::new();
        for kind in ["gcn", "sage", "gat"] {
            let mut layer: Box<dyn Layer> = match kind {
                "gcn" => Box::new(GcnLayer::new(5, 2, 72)),
                "sage" => Box::new(SageLayer::new(5, 2, 73)),
                _ => Box::new(GatLayer::new(5, 2, 74)),
            };
            let out = layer.forward(&g, &x, &mut scratch);
            assert!(
                out.as_slice().iter().all(|v| v.is_finite()),
                "{kind} forward produced non-finite with isolated nodes"
            );
            layer.zero_grad();
            let gx = layer.backward(&g, &r, &mut scratch);
            assert!(
                gx.as_slice().iter().all(|v| v.is_finite()),
                "{kind} backward produced non-finite with isolated nodes"
            );
        }
    }

    #[test]
    fn fully_isolated_graph_kernels_are_finite() {
        // No edges at all: every degree is zero, the transpose is
        // empty, and the cached inverse-sqrt norms must still be
        // finite (degree + 1 self-loop convention).
        let g = GraphBuilder::new(4).build().expect("build");
        assert!(g.gcn_inv_sqrt().iter().all(|v| v.is_finite()));
        let x = glorot_uniform(4, 3, 75);
        let r = glorot_uniform(4, 2, 76);
        let mut scratch = ScratchArena::new();
        for kind in ["gcn", "sage", "gat"] {
            let mut layer: Box<dyn Layer> = match kind {
                "gcn" => Box::new(GcnLayer::new(3, 2, 77)),
                "sage" => Box::new(SageLayer::new(3, 2, 78)),
                _ => Box::new(GatLayer::new(3, 2, 79)),
            };
            let out = layer.forward(&g, &x, &mut scratch);
            layer.zero_grad();
            let gx = layer.backward(&g, &r, &mut scratch);
            assert!(out.as_slice().iter().all(|v| v.is_finite()), "{kind} forward");
            assert!(gx.as_slice().iter().all(|v| v.is_finite()), "{kind} backward");
        }
    }

    #[test]
    fn empty_graph_does_not_panic() {
        let g = GraphBuilder::new(0).build().expect("build");
        let x = Matrix::zeros(0, 3);
        let r = Matrix::zeros(0, 2);
        let mut scratch = ScratchArena::new();
        assert_eq!(gcn_aggregate(&g, &x).rows(), 0);
        assert_eq!(mean_aggregate(&g, &x).rows(), 0);
        assert_eq!(mean_aggregate_backward(&g, &x).rows(), 0);
        for kind in ["gcn", "sage", "gat"] {
            let mut layer: Box<dyn Layer> = match kind {
                "gcn" => Box::new(GcnLayer::new(3, 2, 80)),
                "sage" => Box::new(SageLayer::new(3, 2, 81)),
                _ => Box::new(GatLayer::new(3, 2, 82)),
            };
            let out = layer.forward(&g, &x, &mut scratch);
            assert_eq!((out.rows(), out.cols()), (0, 2), "{kind} empty-graph forward shape");
            layer.zero_grad();
            let gx = layer.backward(&g, &r, &mut scratch);
            assert_eq!((gx.rows(), gx.cols()), (0, 3), "{kind} empty-graph backward shape");
        }
    }

    #[test]
    fn gat_zero_out_dim_does_not_panic() {
        // Regression: the single-pass forward carved `out` with
        // `chunks_mut(d)`, which panics on chunk size 0. The guarded
        // two-pass form must handle a zero-width head.
        let g = tiny_graph();
        let x = tiny_x(83);
        let mut layer = GatLayer::new(3, 0, 84);
        let mut scratch = ScratchArena::new();
        let out = layer.forward(&g, &x, &mut scratch);
        assert_eq!((out.rows(), out.cols()), (4, 0));
        layer.zero_grad();
        let gx = layer.backward(&g, &Matrix::zeros(4, 0), &mut scratch);
        assert_eq!((gx.rows(), gx.cols()), (4, 3));
        assert!(gx.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn stable_softmax_matches_naive_bitwise_when_max_is_zero() {
        // When the largest activation is exactly 0.0 the stabilizing
        // subtraction is the identity (`x - 0.0 == x` bitwise for
        // finite x), so the stable path must reproduce the naive one
        // bit for bit. `leaky(0.0) == 0.0`, so a span containing one
        // zero logit and otherwise-negative logits pins this down.
        let pre = [0.0f32, -1.0, -2.5, -0.25, -7.0];
        let mut stable = [0.0f32; 5];
        let mut naive = [0.0f32; 5];
        neighborhood_softmax(&pre, &mut stable);
        neighborhood_softmax_naive(&pre, &mut naive);
        for (i, (s, n)) in stable.iter().zip(&naive).enumerate() {
            assert_eq!(s.to_bits(), n.to_bits(), "element {i}: {s:?} vs {n:?}");
        }
        let sum: f32 = stable.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stable_softmax_survives_large_logits() {
        // exp(100) overflows f32 to inf, so the naive softmax turns
        // into inf/inf = NaN; max-subtraction keeps every exponent
        // <= 0 and the distribution finite.
        let pre = [100.0f32, 95.0, 40.0];
        let mut stable = [0.0f32; 3];
        let mut naive = [0.0f32; 3];
        neighborhood_softmax(&pre, &mut stable);
        neighborhood_softmax_naive(&pre, &mut naive);
        assert!(naive.iter().any(|v| v.is_nan()), "naive should overflow: {naive:?}");
        assert!(stable.iter().all(|v| v.is_finite()), "stable must stay finite: {stable:?}");
        let sum: f32 = stable.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(stable[0] > stable[1] && stable[1] > stable[2]);
    }

    #[test]
    fn repeated_forwards_stop_allocating() {
        // Steady-state zero allocation: after the first batch warms
        // the arena, identical batches must not touch the allocator.
        let g = tiny_graph();
        let x = tiny_x(33);
        let r = glorot_uniform(4, 2, 34);
        let mut scratch = ScratchArena::new();
        for kind in ["gcn", "sage", "gat"] {
            let mut layer: Box<dyn Layer> = match kind {
                "gcn" => Box::new(GcnLayer::new(3, 2, 40)),
                "sage" => Box::new(SageLayer::new(3, 2, 41)),
                _ => Box::new(GatLayer::new(3, 2, 42)),
            };
            for _ in 0..2 {
                let out = layer.forward(&g, &x, &mut scratch);
                layer.zero_grad();
                let gx = layer.backward(&g, &r, &mut scratch);
                scratch.recycle(out);
                scratch.recycle(gx);
            }
            let warm = scratch.fresh_allocs();
            for _ in 0..3 {
                let out = layer.forward(&g, &x, &mut scratch);
                layer.zero_grad();
                let gx = layer.backward(&g, &r, &mut scratch);
                scratch.recycle(out);
                scratch.recycle(gx);
            }
            assert_eq!(scratch.fresh_allocs(), warm, "{kind} allocated in steady state");
        }
    }
}

#[cfg(test)]
mod multi_head_tests {
    use super::*;
    use crate::init::glorot_uniform;
    use gnnav_graph::GraphBuilder;

    fn tiny_graph() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2).add_edge(2, 3);
        b.symmetrize().build().expect("build")
    }

    #[test]
    fn single_head_matches_plain_gat() {
        let g = tiny_graph();
        let x = glorot_uniform(4, 3, 7);
        let mut scratch = ScratchArena::new();
        let mut multi = MultiHeadGatLayer::new(3, 2, 1, 40);
        let mut single = GatLayer::new(3, 2, 40);
        let a = multi.forward(&g, &x, &mut scratch);
        let b = single.forward(&g, &x, &mut scratch);
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn heads_have_distinct_parameters() {
        let mut m = MultiHeadGatLayer::new(3, 2, 4, 50);
        assert_eq!(m.num_heads(), 4);
        assert_eq!(m.param_count(), 4 * GatLayer::new(3, 2, 1).param_count());
        assert_eq!(m.params_mut().len(), 4 * 3);
    }

    #[test]
    fn multi_head_gradient_check() {
        // Finite-difference input-gradient check across the averaged
        // heads (same harness as the single layers).
        let g = tiny_graph();
        let x = glorot_uniform(4, 3, 8);
        let r = glorot_uniform(4, 2, 9);
        let mut scratch = ScratchArena::new();
        let mut layer = MultiHeadGatLayer::new(3, 2, 3, 60);
        layer.forward(&g, &x, &mut scratch);
        layer.zero_grad();
        let grad_x = layer.backward(&g, &r, &mut scratch);

        let eps = 1e-2f32;
        for &(rr, cc) in &[(0usize, 0usize), (3, 2)] {
            let loss =
                |layer: &mut MultiHeadGatLayer, scratch: &mut ScratchArena, x: &Matrix| -> f32 {
                    layer
                        .forward(&g, x, scratch)
                        .as_slice()
                        .iter()
                        .zip(r.as_slice())
                        .map(|(a, b)| a * b)
                        .sum()
                };
            let mut xp = x.clone();
            xp.set(rr, cc, xp.get(rr, cc) + eps);
            let lp = loss(&mut layer, &mut scratch, &xp);
            let mut xm = x.clone();
            xm.set(rr, cc, xm.get(rr, cc) - eps);
            let lm = loss(&mut layer, &mut scratch, &xm);
            let fd = (lp - lm) / (2.0 * eps);
            let an = grad_x.get(rr, cc);
            assert!(
                (fd - an).abs() < 5e-2 * (1.0 + fd.abs().max(an.abs())),
                "({rr},{cc}): fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one head")]
    fn zero_heads_rejected() {
        let _ = MultiHeadGatLayer::new(3, 2, 0, 1);
    }
}
