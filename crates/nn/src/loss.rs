//! Losses for node classification.

use crate::tensor::Matrix;

/// Softmax cross-entropy over the rows listed in `target_rows`.
///
/// Returns the mean loss over the targets and the gradient with
/// respect to the logits (zero for non-target rows, already divided by
/// the target count).
///
/// # Panics
///
/// Panics if a target row or its label is out of range, or if
/// `target_rows` is empty.
pub fn softmax_cross_entropy(
    logits: &Matrix,
    labels: &[u16],
    target_rows: &[u32],
) -> (f32, Matrix) {
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    let loss = softmax_cross_entropy_into(logits, labels, target_rows, &mut grad);
    (loss, grad)
}

/// [`softmax_cross_entropy`] writing the gradient into a
/// caller-provided matrix (fully overwritten; typically borrowed from
/// the model's scratch arena). Allocation-free.
///
/// # Panics
///
/// Panics on the same conditions as [`softmax_cross_entropy`], or if
/// `grad` does not match the logits' shape.
pub fn softmax_cross_entropy_into(
    logits: &Matrix,
    labels: &[u16],
    target_rows: &[u32],
    grad: &mut Matrix,
) -> f32 {
    assert!(!target_rows.is_empty(), "need at least one target row");
    let classes = logits.cols();
    assert_eq!(
        (grad.rows(), grad.cols()),
        (logits.rows(), classes),
        "softmax_cross_entropy grad shape mismatch"
    );
    grad.as_mut_slice().fill(0.0);
    let inv_n = 1.0 / target_rows.len() as f32;
    let mut loss = 0.0f32;
    for &r in target_rows {
        let r = r as usize;
        let row = logits.row(r);
        let label = labels[r] as usize;
        assert!(label < classes, "label {label} out of range ({classes} classes)");
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for &x in row {
            sum += (x - max).exp();
        }
        let log_sum = sum.ln() + max;
        loss += log_sum - row[label];
        let grow = grad.row_mut(r);
        for (c, g) in grow.iter_mut().enumerate() {
            let p = (row[c] - max).exp() / sum;
            *g = (p - if c == label { 1.0 } else { 0.0 }) * inv_n;
        }
    }
    loss * inv_n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_low_loss() {
        let logits = Matrix::from_rows(&[&[10.0, -10.0], &[-10.0, 10.0]]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1], &[0, 1]);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn uniform_prediction_log_classes() {
        let logits = Matrix::zeros(1, 4);
        let (loss, _) = softmax_cross_entropy(&logits, &[2], &[0]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.3, -0.2, 0.5]]);
        let labels = [1u16];
        let (_, grad) = softmax_cross_entropy(&logits, &labels, &[0]);
        let eps = 1e-3f32;
        for c in 0..3 {
            let mut lp = logits.clone();
            lp.set(0, c, lp.get(0, c) + eps);
            let (loss_p, _) = softmax_cross_entropy(&lp, &labels, &[0]);
            let mut lm = logits.clone();
            lm.set(0, c, lm.get(0, c) - eps);
            let (loss_m, _) = softmax_cross_entropy(&lm, &labels, &[0]);
            let fd = (loss_p - loss_m) / (2.0 * eps);
            assert!((fd - grad.get(0, c)).abs() < 1e-3, "c={c}: {fd} vs {}", grad.get(0, c));
        }
    }

    #[test]
    fn non_target_rows_get_zero_gradient() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 1], &[1]);
        assert_eq!(grad.row(0), &[0.0, 0.0]);
        assert!(grad.row(1).iter().any(|&g| g != 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_targets_rejected() {
        let logits = Matrix::zeros(1, 2);
        let _ = softmax_cross_entropy(&logits, &[0], &[]);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        // Softmax CE gradient sums to zero across classes per target.
        let logits = Matrix::from_rows(&[&[0.1, 0.9, -0.4]]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2], &[0]);
        let s: f32 = grad.row(0).iter().sum();
        assert!(s.abs() < 1e-6);
    }
}
