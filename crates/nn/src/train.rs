//! Mini-batch training helpers.
//!
//! These functions implement the *functional* part of the paper's
//! Algorithm 1 (lines 4–8: aggregate, combine, loss, backwards). The
//! orchestration — sampling, transfer, caching, timing — lives in
//! `gnnav-runtime`, which calls into here once a mini-batch's data is
//! "on device".

use crate::loss::softmax_cross_entropy_into;
use crate::metrics::accuracy;
use crate::model::GnnModel;
use crate::optim::Adam;
use crate::tensor::Matrix;
use gnnav_graph::Graph;

/// Runs one optimization step of `model` on a mini-batch subgraph.
///
/// - `g` is the induced mini-batch subgraph (local node ids).
/// - `x` holds one feature row per subgraph node.
/// - `labels` holds one label per subgraph node.
/// - `target_rows` are the *local* ids of the batch's target vertices
///   (`B^0` in the paper) — loss is computed only on them.
///
/// Returns the batch loss.
///
/// # Panics
///
/// Panics if shapes disagree or `target_rows` is empty.
pub fn train_step(
    model: &mut GnnModel,
    opt: &mut Adam,
    g: &Graph,
    x: &Matrix,
    labels: &[u16],
    target_rows: &[u32],
) -> f32 {
    assert_eq!(x.rows(), g.num_nodes(), "one feature row per node");
    assert_eq!(labels.len(), g.num_nodes(), "one label per node");
    model.set_train_mode(true);
    let logits = model.forward(g, x);
    let mut grad = model.scratch_mut().take(logits.rows(), logits.cols());
    let loss = softmax_cross_entropy_into(&logits, labels, target_rows, &mut grad);
    model.zero_grad();
    model.backward(g, &grad);
    opt.step_with(|f| model.for_each_param_mut(f));
    model.recycle(grad);
    model.recycle(logits);
    loss
}

/// Full-graph forward pass returning accuracy over `rows`.
///
/// At the reproduction's graph scales a full-graph forward is cheap,
/// so evaluation does not sample.
pub fn evaluate(model: &mut GnnModel, g: &Graph, x: &Matrix, labels: &[u16], rows: &[u32]) -> f64 {
    model.set_train_mode(false);
    let logits = model.forward(g, x);
    model.set_train_mode(true);
    let acc = accuracy(&logits, labels, rows);
    model.recycle(logits);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use gnnav_graph::{FeatureSpec, Features, GraphBuilder};

    /// Two well-separated communities on a small graph: any GNN should
    /// fit this quickly.
    fn toy_problem() -> (Graph, Matrix, Vec<u16>) {
        let n = 40usize;
        let mut b = GraphBuilder::new(n);
        // Dense-ish intra-community edges.
        for i in 0..20u32 {
            for j in (i + 1)..20 {
                if (i + j) % 3 == 0 {
                    b.add_edge(i, j);
                }
            }
        }
        for i in 20..40u32 {
            for j in (i + 1)..40 {
                if (i + j) % 3 == 0 {
                    b.add_edge(i, j);
                }
            }
        }
        b.add_edge(0, 20); // single bridge
        let g = b.symmetrize().build().expect("build");
        let comm: Vec<u32> = (0..n as u32).map(|v| if v < 20 { 0 } else { 1 }).collect();
        let feats = Features::synthesize(&comm, &FeatureSpec::new(8, 2).with_noise(0.8), 3);
        let x = Matrix::from_vec(n, 8, feats.matrix().to_vec());
        let labels = feats.labels().to_vec();
        (g, x, labels)
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        for kind in [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gat] {
            let (g, x, labels) = toy_problem();
            let all: Vec<u32> = (0..40).collect();
            let mut model = GnnModel::new(kind, 8, 16, 2, 2, 11);
            let mut opt = Adam::new(0.02);
            let first = train_step(&mut model, &mut opt, &g, &x, &labels, &all);
            let mut last = first;
            for _ in 0..40 {
                last = train_step(&mut model, &mut opt, &g, &x, &labels, &all);
            }
            assert!(last < first * 0.7, "{kind}: loss {first} -> {last}");
            let acc = evaluate(&mut model, &g, &x, &labels, &all);
            assert!(acc > 0.8, "{kind}: accuracy {acc}");
        }
    }

    #[test]
    fn training_on_subset_of_targets_only() {
        let (g, x, labels) = toy_problem();
        let targets: Vec<u32> = (0..10).collect();
        let mut model = GnnModel::new(ModelKind::Sage, 8, 16, 2, 2, 5);
        let mut opt = Adam::new(0.02);
        let loss = train_step(&mut model, &mut opt, &g, &x, &labels, &targets);
        assert!(loss.is_finite());
    }

    #[test]
    #[should_panic(expected = "one feature row per node")]
    fn shape_mismatch_rejected() {
        let (g, _, labels) = toy_problem();
        let mut model = GnnModel::new(ModelKind::Gcn, 8, 16, 2, 2, 5);
        let mut opt = Adam::new(0.01);
        let bad_x = Matrix::zeros(3, 8);
        let _ = train_step(&mut model, &mut opt, &g, &bad_x, &labels, &[0]);
    }
}
