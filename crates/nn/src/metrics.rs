//! Classification metrics.

use crate::tensor::Matrix;

/// Fraction of `rows` whose argmax logit equals the label.
///
/// Returns 0.0 when `rows` is empty.
pub fn accuracy(logits: &Matrix, labels: &[u16], rows: &[u32]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for &r in rows {
        let row = logits.row(r as usize);
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (c, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = c;
            }
        }
        if best == labels[r as usize] as usize {
            correct += 1;
        }
    }
    correct as f64 / rows.len() as f64
}

/// Macro-averaged F1 over the classes that appear among `rows`.
///
/// Returns 0.0 when `rows` is empty.
pub fn macro_f1(logits: &Matrix, labels: &[u16], rows: &[u32]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let classes = logits.cols();
    let mut tp = vec![0usize; classes];
    let mut fp = vec![0usize; classes];
    let mut fnn = vec![0usize; classes];
    let mut present = vec![false; classes];
    for &r in rows {
        let row = logits.row(r as usize);
        let mut pred = 0usize;
        let mut best = f32::NEG_INFINITY;
        for (c, &v) in row.iter().enumerate() {
            if v > best {
                best = v;
                pred = c;
            }
        }
        let truth = labels[r as usize] as usize;
        present[truth] = true;
        if pred == truth {
            tp[truth] += 1;
        } else {
            fp[pred] += 1;
            fnn[truth] += 1;
        }
    }
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for c in 0..classes {
        if !present[c] {
            continue;
        }
        count += 1;
        let p = tp[c] as f64 / (tp[c] + fp[c]).max(1) as f64;
        let r = tp[c] as f64 / (tp[c] + fnn[c]).max(1) as f64;
        if p + r > 0.0 {
            sum += 2.0 * p * r / (p + r);
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0], &[5.0, 4.0]]);
        let labels = [0u16, 1, 1];
        assert!((accuracy(&logits, &labels, &[0, 1, 2]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_subset_of_rows() {
        let logits = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let labels = [1u16, 1];
        assert_eq!(accuracy(&logits, &labels, &[1]), 1.0);
        assert_eq!(accuracy(&logits, &labels, &[]), 0.0);
    }

    #[test]
    fn macro_f1_perfect_is_one() {
        let logits = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 3.0]]);
        let labels = [0u16, 1];
        assert!((macro_f1(&logits, &labels, &[0, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_penalizes_minority_errors_more_than_accuracy() {
        // 3 of class 0 correct, 1 of class 1 wrong.
        let logits = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[1.0, 0.0], &[1.0, 0.0]]);
        let labels = [0u16, 0, 0, 1];
        let acc = accuracy(&logits, &labels, &[0, 1, 2, 3]);
        let f1 = macro_f1(&logits, &labels, &[0, 1, 2, 3]);
        assert!(f1 < acc, "f1 {f1} should be below acc {acc}");
    }
}
