//! Neural-network substrate for the GNNavigator reproduction.
//!
//! A compact, dependency-free (beyond `rand`) GNN training stack:
//! dense [`tensor::Matrix`] math, three GNN layer families
//! ([`layers::GcnLayer`], [`layers::SageLayer`], [`layers::GatLayer`])
//! with hand-written backward passes verified by finite-difference
//! tests, an [`Adam`] optimizer, softmax cross-entropy, and mini-batch
//! [`train`] helpers.
//!
//! This replaces the PyTorch/PyG stack the paper trains with: GNNs are
//! *actually trained* here (on CPU, at reduced scale), so accuracy
//! responds genuinely to sampling and batching decisions — the signal
//! GNNavigator's estimator and explorer need.
//!
//! # Example
//!
//! ```
//! use gnnav_nn::{Adam, GnnModel, ModelKind, tensor::Matrix, train};
//! use gnnav_graph::GraphBuilder;
//!
//! # fn main() -> Result<(), gnnav_graph::GraphError> {
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(0, 1).add_edge(1, 2);
//! let g = b.symmetrize().build()?;
//! let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
//! let labels = vec![0u16, 1, 1];
//!
//! let mut model = GnnModel::new(ModelKind::Sage, 2, 8, 2, 2, 42);
//! let mut opt = Adam::new(0.01);
//! let loss = train::train_step(&mut model, &mut opt, &g, &x, &labels, &[0, 1, 2]);
//! assert!(loss.is_finite());
//! # Ok(())
//! # }
//! ```

pub mod init;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod scratch;
pub mod tensor;
pub mod train;

pub use model::{GnnModel, ModelKind};
pub use optim::{Adam, AdamState, Sgd};
pub use scratch::ScratchArena;
pub use tensor::{kernel_stats, KernelStats, Matrix};
