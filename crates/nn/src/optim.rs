//! Optimizers over model parameters.

use crate::layers::ParamRef;

/// Adam optimizer with bias correction.
///
/// Moment buffers are keyed by the position of each parameter in the
/// model's stable `params_mut()` traversal order, so a single `Adam`
/// instance must only ever be used with one model.
///
/// # Example
///
/// ```
/// use gnnav_nn::{Adam, GnnModel, ModelKind};
///
/// let mut model = GnnModel::new(ModelKind::Gcn, 4, 8, 2, 2, 1);
/// let mut opt = Adam::new(1e-2);
/// // ... forward / backward ...
/// opt.step(&mut model.params_mut());
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimizer with the given learning rate and the
    /// standard betas `(0.9, 0.999)`.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate mid-run (moment estimates are kept).
    /// Used by recovery guards that anneal the LR after bad steps.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step to `params` using their accumulated
    /// gradients, then leaves the gradients untouched (call
    /// `zero_grad` on the model afterwards).
    pub fn step(&mut self, params: &mut [ParamRef<'_>]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let mut slot = 0usize;
        for p in params.iter_mut() {
            let p = match p {
                ParamRef::Linear(lin) => ParamRef::Linear(lin),
                ParamRef::Vector(vp) => ParamRef::Vector(vp),
            };
            self.apply_param(&mut slot, p, bc1, bc2);
        }
    }

    /// Like [`Adam::step`], but streams parameters from `visit` (for
    /// example `GnnModel::for_each_param_mut`) instead of collecting
    /// them into a `Vec` first — the training hot path uses this form
    /// so a steady-state step performs zero heap allocations.
    pub fn step_with(&mut self, visit: impl FnOnce(&mut dyn FnMut(ParamRef<'_>))) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let mut slot = 0usize;
        visit(&mut |p| self.apply_param(&mut slot, p, bc1, bc2));
    }

    /// Updates one parameter, advancing the moment-buffer slot cursor
    /// exactly as the stable traversal order dictates.
    fn apply_param(&mut self, slot: &mut usize, p: ParamRef<'_>, bc1: f32, bc2: f32) {
        match p {
            ParamRef::Linear(lin) => {
                // Destructuring splits the borrows, so the bias update
                // reads `gb` directly instead of cloning it.
                let crate::layers::LinearParam { w, b, gw, gb } = lin;
                self.update_slot(*slot, w.as_mut_slice(), gw.as_slice(), bc1, bc2);
                *slot += 1;
                if !b.is_empty() {
                    self.update_slot(*slot, b, gb, bc1, bc2);
                }
                *slot += 1;
            }
            ParamRef::Vector(vp) => {
                let crate::layers::VecParam { v, g } = vp;
                self.update_slot(*slot, v, g, bc1, bc2);
                *slot += 1;
            }
        }
    }

    fn update_slot(&mut self, slot: usize, w: &mut [f32], g: &[f32], bc1: f32, bc2: f32) {
        while self.m.len() <= slot {
            self.m.push(Vec::new());
            self.v.push(Vec::new());
        }
        if self.m[slot].len() != w.len() {
            self.m[slot] = vec![0.0; w.len()];
            self.v[slot] = vec![0.0; w.len()];
        }
        let m = &mut self.m[slot];
        let v = &mut self.v[slot];
        for i in 0..w.len() {
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
            let mh = m[i] / bc1;
            let vh = v[i] / bc2;
            w[i] -= self.lr * mh / (vh.sqrt() + self.eps);
        }
    }
}

/// A snapshot of an [`Adam`] instance's mutable state, for
/// checkpointing. Moment buffers are keyed by traversal-order slot
/// (see [`Adam`]), so a snapshot only restores correctly onto the
/// same model shape it was captured from.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Current learning rate (recovery guards may have annealed it).
    pub lr: f32,
    /// Steps taken (drives bias correction).
    pub t: u64,
    /// First-moment buffers, per slot.
    pub m: Vec<Vec<f32>>,
    /// Second-moment buffers, per slot.
    pub v: Vec<Vec<f32>>,
}

impl Adam {
    /// Captures the optimizer's mutable state.
    pub fn state(&self) -> AdamState {
        AdamState { lr: self.lr, t: self.t, m: self.m.clone(), v: self.v.clone() }
    }

    /// Restores state captured by [`Adam::state`].
    pub fn restore(&mut self, state: AdamState) {
        self.lr = state.lr;
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
    }
}

/// Plain SGD, used as a baseline and in tests.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies one gradient-descent step.
    pub fn step(&self, params: &mut [ParamRef<'_>]) {
        for p in params.iter_mut() {
            match p {
                ParamRef::Linear(lin) => {
                    for (w, &g) in lin.w.as_mut_slice().iter_mut().zip(lin.gw.as_slice()) {
                        *w -= self.lr * g;
                    }
                    for (b, &g) in lin.b.iter_mut().zip(&lin.gb) {
                        *b -= self.lr * g;
                    }
                }
                ParamRef::Vector(vp) => {
                    for (w, &g) in vp.v.iter_mut().zip(&vp.g) {
                        *w -= self.lr * g;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::LinearParam;

    #[test]
    fn adam_reduces_quadratic() {
        // Minimize f(w) = 0.5 * w^2 on a 1x1 linear param.
        let mut p = LinearParam::new_no_bias(1, 1, 1);
        p.w.set(0, 0, 3.0);
        let mut opt = Adam::new(0.1);
        for _ in 0..200 {
            let w = p.w.get(0, 0);
            p.gw.set(0, 0, w);
            opt.step(&mut [ParamRef::Linear(&mut p)]);
        }
        assert!(p.w.get(0, 0).abs() < 0.05, "w = {}", p.w.get(0, 0));
    }

    #[test]
    fn sgd_reduces_quadratic() {
        let mut p = LinearParam::new_no_bias(1, 1, 1);
        p.w.set(0, 0, 2.0);
        let opt = Sgd::new(0.1);
        for _ in 0..100 {
            let w = p.w.get(0, 0);
            p.gw.set(0, 0, w);
            opt.step(&mut [ParamRef::Linear(&mut p)]);
        }
        assert!(p.w.get(0, 0).abs() < 1e-3);
    }

    #[test]
    fn adam_updates_bias_too() {
        let mut p = LinearParam::new(1, 1, 1);
        p.b[0] = 1.0;
        let mut opt = Adam::new(0.05);
        for _ in 0..300 {
            p.gb[0] = p.b[0];
            p.gw.set(0, 0, 0.0);
            opt.step(&mut [ParamRef::Linear(&mut p)]);
        }
        assert!(p.b[0].abs() < 0.05, "b = {}", p.b[0]);
    }

    #[test]
    fn lr_accessor() {
        assert_eq!(Adam::new(0.01).lr(), 0.01);
    }
}
