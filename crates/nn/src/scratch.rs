//! Reusable buffer arena for the training hot path.
//!
//! Every matrix the forward/backward passes produce per batch —
//! activations, aggregation temporaries, gradients — cycles through a
//! [`ScratchArena`] instead of the global allocator. After a warm-up
//! batch at the largest shapes, `take`/`recycle` round-trips reuse
//! pooled capacity and steady-state training performs zero heap
//! allocation per batch (tracked by [`ScratchArena::fresh_allocs`]).
//!
//! The arena is deliberately dumb: a flat pool of `Vec<f32>` buffers
//! with best-fit reuse. Kernel outputs are written fully or
//! zero-initialized by `take`, so stale contents can never leak into
//! results — reusing a buffer is arithmetically invisible.

use crate::tensor::Matrix;

const MAX_POOLED: usize = 64;

/// A recycling pool of `f32` buffers backing [`Matrix`] temporaries.
#[derive(Debug, Default)]
pub struct ScratchArena {
    pool: Vec<Vec<f32>>,
    takes: u64,
    fresh_allocs: u64,
}

impl ScratchArena {
    /// An empty arena.
    pub fn new() -> Self {
        ScratchArena::default()
    }

    /// A zero-filled `rows x cols` matrix, reusing pooled capacity
    /// when possible.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take_raw(rows * cols))
    }

    /// A zero-filled buffer of `len` floats.
    pub fn take_raw(&mut self, len: usize) -> Vec<f32> {
        self.takes += 1;
        let mut best: Option<(usize, usize)> = None;
        let mut largest: Option<(usize, usize)> = None;
        for (i, buf) in self.pool.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
            if largest.is_none_or(|(_, c)| cap > c) {
                largest = Some((i, cap));
            }
        }
        let mut buf = match best.or(largest) {
            Some((i, _)) => self.pool.swap_remove(i),
            None => Vec::new(),
        };
        if buf.capacity() < len {
            self.fresh_allocs += 1;
        }
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a matrix to the pool.
    pub fn recycle(&mut self, m: Matrix) {
        self.recycle_raw(m.into_vec());
    }

    /// Returns a raw buffer to the pool.
    pub fn recycle_raw(&mut self, mut buf: Vec<f32>) {
        if buf.capacity() == 0 || self.pool.len() >= MAX_POOLED {
            return;
        }
        buf.clear();
        self.pool.push(buf);
    }

    /// Reuses `m`'s storage as a zero-filled `rows x cols` matrix.
    pub fn reshape_zeroed(&mut self, m: Matrix, rows: usize, cols: usize) -> Matrix {
        let mut buf = m.into_vec();
        let len = rows * cols;
        if buf.capacity() < len {
            self.fresh_allocs += 1;
        }
        buf.clear();
        buf.resize(len, 0.0);
        Matrix::from_vec(rows, cols, buf)
    }

    /// Copies `src` into `slot`, reusing `slot`'s previous storage (or
    /// a pooled buffer) instead of cloning.
    pub fn cache_copy(&mut self, slot: &mut Option<Matrix>, src: &Matrix) {
        let mut buf = match slot.take() {
            Some(m) => m.into_vec(),
            None => {
                self.takes += 1;
                let len = src.as_slice().len();
                let mut best: Option<(usize, usize)> = None;
                for (i, b) in self.pool.iter().enumerate() {
                    let cap = b.capacity();
                    if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                        best = Some((i, cap));
                    }
                }
                match best {
                    Some((i, _)) => self.pool.swap_remove(i),
                    None => Vec::new(),
                }
            }
        };
        if buf.capacity() < src.as_slice().len() {
            self.fresh_allocs += 1;
        }
        buf.clear();
        buf.extend_from_slice(src.as_slice());
        *slot = Some(Matrix::from_vec(src.rows(), src.cols(), buf));
    }

    /// Buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Total `take` calls served.
    pub fn takes(&self) -> u64 {
        self.takes
    }

    /// Takes that had to grow or allocate backing storage. Flat across
    /// two identical batches == zero allocation in steady state.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh_allocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_reuses_capacity() {
        let mut arena = ScratchArena::new();
        let m = arena.take(8, 8);
        assert_eq!(arena.fresh_allocs(), 1);
        arena.recycle(m);
        let m2 = arena.take(4, 4);
        assert_eq!(arena.fresh_allocs(), 1, "smaller take reuses the pooled buffer");
        assert!(m2.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn take_zeroes_recycled_contents() {
        let mut arena = ScratchArena::new();
        let mut m = arena.take(2, 2);
        m.as_mut_slice().fill(7.0);
        arena.recycle(m);
        let m2 = arena.take(2, 2);
        assert!(m2.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn cache_copy_reuses_slot_storage() {
        let mut arena = ScratchArena::new();
        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut slot: Option<Matrix> = None;
        arena.cache_copy(&mut slot, &src);
        let allocs = arena.fresh_allocs();
        arena.cache_copy(&mut slot, &src);
        assert_eq!(arena.fresh_allocs(), allocs, "second copy reuses the slot buffer");
        assert_eq!(slot.expect("filled").as_slice(), src.as_slice());
    }

    #[test]
    fn reshape_reuses_storage_when_it_fits() {
        let mut arena = ScratchArena::new();
        let m = arena.take(4, 4);
        let allocs = arena.fresh_allocs();
        let m2 = arena.reshape_zeroed(m, 2, 8);
        assert_eq!(arena.fresh_allocs(), allocs);
        assert_eq!((m2.rows(), m2.cols()), (2, 8));
    }
}
