//! Minimal dense row-major f32 matrix used by the NN substrate.
//!
//! This is deliberately small: the GNN layers need matmul, transpose
//! variants, elementwise maps, and row reductions — nothing more. The
//! matmul kernels process fixed-width [`LANE`]-element f32 chunks with
//! explicit accumulator arrays plus a scalar tail, a shape LLVM
//! autovectorizes on any x86-64 / aarch64 baseline target (verified by
//! the throughput gate in `gnnav-bench`'s `nn_kernels` bench).
//!
//! # Parallelism and determinism
//!
//! The three matmul kernels are cache-blocked over output-column tiles
//! and row-parallel over `gnnav_par`: output rows are split into
//! static chunks and each chunk runs the identical serial inner loop.
//! Per output element, `matmul` and `matmul_at_b` accumulate one
//! reduction term at a time with the reduction index ascending (lanes
//! run across *columns*, so lane width never touches the per-element
//! order), and `matmul_a_bt` reduces a fixed [`LANE`]-way partial-sum
//! split whose layout depends only on the reduction length. All three
//! are therefore **bitwise identical** for any worker count — the
//! thread pool only changes wall time, never a single bit of output.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Vector lane width (f32 elements) the kernels are written around:
/// wide enough for one AVX2 register or two SSE2/NEON registers, and
/// small enough that the scalar tail never dominates.
pub const LANE: usize = 8;

/// Reduction-axis unroll of the saxpy-form kernels: each pass streams
/// `KU` rows of `B` against one resident output tile, cutting
/// output-tile load/store traffic by `KU`x.
const KU: usize = 4;

/// Output-column tile width (f32 elements) for the blocked matmuls:
/// one tile of the output row plus [`KU`] tiles of `B` rows stay
/// resident in L1 while the kernel streams over `k`.
const COL_TILE: usize = 128;

/// Output rows per parallel chunk unit in the saxpy-form matmuls. A
/// reduction-axis tile of `B` ([`K_TILE`]` x `[`COL_TILE`]) is swept
/// once per row *block* instead of once per row, dividing `B` cache
/// traffic by `ROW_BLOCK`. Chunk boundaries stay static (every
/// `ROW_BLOCK` rows, final block short), so the thread-count
/// invariance is untouched.
const ROW_BLOCK: usize = 8;

/// Reduction-axis tile depth: `K_TILE x COL_TILE` f32 of `B` (16 KiB)
/// stays L1-resident while every row of the current [`ROW_BLOCK`]
/// sweeps it. Per output element the reduction still walks `k`
/// ascending — tile-ascending outer, `k`-ascending inner — so tiling
/// is bitwise invisible.
const K_TILE: usize = 32;

/// Minimum FLOPs a worker must have before the kernels fan out.
const PAR_GRAIN_FLOPS: u64 = 65_536;

/// `out[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]` with the four
/// terms added *sequentially* per element (reduction index ascending),
/// lane-vectorized across `j` with a scalar tail. The sequential adds
/// keep every output element's accumulation order identical to the
/// one-term-at-a-time loop, so unrolling is bitwise invisible.
#[inline]
fn axpy4(out: &mut [f32], a: [f32; KU], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
    // Equal-length reslices up front so the chunk iterators below are
    // provably in lockstep and the indexing stays bounds-check-free.
    let n = out.len();
    let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
    let mut o_it = out.chunks_exact_mut(LANE);
    let mut c0_it = b0.chunks_exact(LANE);
    let mut c1_it = b1.chunks_exact(LANE);
    let mut c2_it = b2.chunks_exact(LANE);
    let mut c3_it = b3.chunks_exact(LANE);
    for ((((o, c0), c1), c2), c3) in o_it
        .by_ref()
        .zip(c0_it.by_ref())
        .zip(c1_it.by_ref())
        .zip(c2_it.by_ref())
        .zip(c3_it.by_ref())
    {
        let mut acc = [0.0f32; LANE];
        acc.copy_from_slice(o);
        for l in 0..LANE {
            acc[l] += a[0] * c0[l];
        }
        for l in 0..LANE {
            acc[l] += a[1] * c1[l];
        }
        for l in 0..LANE {
            acc[l] += a[2] * c2[l];
        }
        for l in 0..LANE {
            acc[l] += a[3] * c3[l];
        }
        o.copy_from_slice(&acc);
    }
    for ((((o, &v0), &v1), &v2), &v3) in o_it
        .into_remainder()
        .iter_mut()
        .zip(c0_it.remainder())
        .zip(c1_it.remainder())
        .zip(c2_it.remainder())
        .zip(c3_it.remainder())
    {
        let mut acc = *o;
        acc += a[0] * v0;
        acc += a[1] * v1;
        acc += a[2] * v2;
        acc += a[3] * v3;
        *o = acc;
    }
}

/// `out[j] += a * b[j]`, lane-vectorized with a scalar tail.
#[inline]
pub(crate) fn axpy1(out: &mut [f32], a: f32, b: &[f32]) {
    let b = &b[..out.len()];
    let mut o_it = out.chunks_exact_mut(LANE);
    let mut b_it = b.chunks_exact(LANE);
    for (o, c) in o_it.by_ref().zip(b_it.by_ref()) {
        for l in 0..LANE {
            o[l] += a * c[l];
        }
    }
    for (o, &bv) in o_it.into_remainder().iter_mut().zip(b_it.remainder()) {
        *o += a * bv;
    }
}

/// Dot product over a fixed [`LANE`]-way partial-sum split: lane `l`
/// accumulates elements `l, l+LANE, l+2*LANE, ...`, the scalar tail is
/// folded in per-lane, and the partial sums are combined left to
/// right. The split depends only on `a.len()`, never on the thread
/// count, so the result is a pure function of the inputs.
#[inline]
pub(crate) fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    let b = &b[..a.len()];
    let mut acc = [0.0f32; LANE];
    let mut a_it = a.chunks_exact(LANE);
    let mut b_it = b.chunks_exact(LANE);
    for (ca, cb) in a_it.by_ref().zip(b_it.by_ref()) {
        for l in 0..LANE {
            acc[l] += ca[l] * cb[l];
        }
    }
    for (j, (&x, &y)) in a_it.remainder().iter().zip(b_it.remainder()).enumerate() {
        acc[j] += x * y;
    }
    let mut sum = 0.0f32;
    for &v in &acc {
        sum += v;
    }
    sum
}

static MATMUL_CALLS: AtomicU64 = AtomicU64::new(0);
static MATMUL_FLOPS: AtomicU64 = AtomicU64::new(0);

/// Cumulative process-wide dense-kernel counters; see [`kernel_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Matmul-family kernel invocations.
    pub matmul_calls: u64,
    /// Multiply-add FLOPs issued by the matmul family (`2 * m * k * n`
    /// per call — the classical bound).
    pub matmul_flops: u64,
}

/// Snapshot of the dense-kernel counters. Deltas around a workload
/// give its compute volume; divided by wall time, its GFLOP/s.
pub fn kernel_stats() -> KernelStats {
    KernelStats {
        matmul_calls: MATMUL_CALLS.load(Ordering::Relaxed),
        matmul_flops: MATMUL_FLOPS.load(Ordering::Relaxed),
    }
}

#[inline]
fn record_matmul(m: usize, k: usize, n: usize) {
    MATMUL_CALLS.fetch_add(1, Ordering::Relaxed);
    MATMUL_FLOPS.fetch_add(2 * (m as u64) * (k as u64) * (n as u64), Ordering::Relaxed);
}

/// Rows per worker needed to amortize a spawn, given per-row FLOPs.
#[inline]
fn grain_rows(flops_per_row: u64) -> usize {
    (PAR_GRAIN_FLOPS / flops_per_row.max(1)).max(1) as usize
}

/// A dense row-major `rows x cols` matrix of `f32`.
///
/// # Example
///
/// ```
/// use gnnav_nn::tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.get(1, 0), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from an owned buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices (for tests and examples).
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The raw row-major buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// `self * other` (standard matmul).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self * other`, written into `out` (fully overwritten). The
    /// allocation-free form of [`Matrix::matmul`]; row-parallel,
    /// column-tiled, and lane-vectorized with a `KU`-deep reduction
    /// unroll — per element, terms are still added one at a time with
    /// `k` ascending, so the result is bitwise identical to the naive
    /// i-k-j loop at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows` or `out` has the wrong
    /// shape.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul dim mismatch");
        assert_eq!((out.rows, out.cols), (self.rows, other.cols), "matmul out shape mismatch");
        record_matmul(self.rows, self.cols, other.cols);
        let n = other.cols;
        let k_dim = self.cols;
        out.data.fill(0.0);
        if n == 0 || self.rows == 0 {
            return;
        }
        let a = &self.data;
        let b = &other.data;
        let grain = grain_rows(2 * (ROW_BLOCK * k_dim) as u64 * n as u64);
        gnnav_par::par_chunks(&mut out.data, ROW_BLOCK * n, grain, |off, out_block| {
            let i0 = off / n;
            // Tiling (columns, reduction depth, row blocks) only
            // reorders work *across* elements; within an element the
            // k loop below stays ascending.
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + COL_TILE).min(n);
                let mut k0 = 0;
                while k0 < k_dim {
                    let k1 = (k0 + K_TILE).min(k_dim);
                    let kb = k0 + (k1 - k0) / KU * KU;
                    for (r, out_row) in out_block.chunks_mut(n).enumerate() {
                        let a_row = &a[(i0 + r) * k_dim..(i0 + r + 1) * k_dim];
                        let out_tile = &mut out_row[j0..j1];
                        let mut k = k0;
                        while k < kb {
                            axpy4(
                                out_tile,
                                [a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]],
                                &b[k * n + j0..k * n + j1],
                                &b[(k + 1) * n + j0..(k + 1) * n + j1],
                                &b[(k + 2) * n + j0..(k + 2) * n + j1],
                                &b[(k + 3) * n + j0..(k + 3) * n + j1],
                            );
                            k += KU;
                        }
                        for k in kb..k1 {
                            axpy1(out_tile, a_row[k], &b[k * n + j0..k * n + j1]);
                        }
                    }
                    k0 = k1;
                }
                j0 = j1;
            }
        });
    }

    /// `self^T * other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn matmul_at_b(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_at_b_into(other, &mut out);
        out
    }

    /// `self^T * other`, written into `out` (fully overwritten).
    ///
    /// Parallel over *output* rows (columns of `self`): each output
    /// row gathers down its column of `self` with `r` ascending —
    /// exactly the per-element order of the serial scatter kernel, so
    /// results are bitwise identical (and bitwise equal to
    /// `self.transpose().matmul(other)`, whose reduction also walks
    /// one term at a time in ascending order).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows` or `out` has the wrong
    /// shape.
    pub fn matmul_at_b_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "matmul_at_b dim mismatch");
        assert_eq!((out.rows, out.cols), (self.cols, other.cols), "matmul_at_b out shape mismatch");
        record_matmul(self.cols, self.rows, other.cols);
        let n = other.cols;
        let k_dim = self.cols;
        let rows = self.rows;
        out.data.fill(0.0);
        if n == 0 || k_dim == 0 {
            return;
        }
        let a = &self.data;
        let b = &other.data;
        let grain = grain_rows(2 * (ROW_BLOCK * rows) as u64 * n as u64);
        gnnav_par::par_chunks(&mut out.data, ROW_BLOCK * n, grain, |off, out_block| {
            let kk0 = off / n;
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + COL_TILE).min(n);
                let mut r0 = 0;
                while r0 < rows {
                    let r1 = (r0 + K_TILE).min(rows);
                    let rb = r0 + (r1 - r0) / KU * KU;
                    for (dk, out_row) in out_block.chunks_mut(n).enumerate() {
                        let k = kk0 + dk;
                        let out_tile = &mut out_row[j0..j1];
                        let mut r = r0;
                        while r < rb {
                            axpy4(
                                out_tile,
                                [
                                    a[r * k_dim + k],
                                    a[(r + 1) * k_dim + k],
                                    a[(r + 2) * k_dim + k],
                                    a[(r + 3) * k_dim + k],
                                ],
                                &b[r * n + j0..r * n + j1],
                                &b[(r + 1) * n + j0..(r + 1) * n + j1],
                                &b[(r + 2) * n + j0..(r + 2) * n + j1],
                                &b[(r + 3) * n + j0..(r + 3) * n + j1],
                            );
                            r += KU;
                        }
                        for r in rb..r1 {
                            axpy1(out_tile, a[r * k_dim + k], &b[r * n + j0..r * n + j1]);
                        }
                    }
                    r0 = r1;
                }
                j0 = j1;
            }
        });
    }

    /// `self * other^T` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_a_bt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_a_bt_into(other, &mut out);
        out
    }

    /// `self * other^T`, written into `out` (fully overwritten).
    /// Row-parallel; each element is one `dot_lanes` dot product —
    /// [`LANE`] independent partial sums whose split depends only on
    /// the reduction length, combined in a fixed order. Unlike the
    /// saxpy-form kernels this is *not* a sequential reduction, so the
    /// result matches `self.matmul(&other.transpose())` numerically
    /// (to rounding) but not bitwise; across thread counts it is still
    /// bitwise identical.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols` or `out` has the wrong
    /// shape.
    pub fn matmul_a_bt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_a_bt dim mismatch");
        assert_eq!((out.rows, out.cols), (self.rows, other.rows), "matmul_a_bt out shape mismatch");
        record_matmul(self.rows, self.cols, other.rows);
        let m = other.rows;
        let k_dim = self.cols;
        if m == 0 || self.rows == 0 {
            return;
        }
        let a = &self.data;
        let b = &other.data;
        let grain = grain_rows(2 * (ROW_BLOCK * k_dim) as u64 * m as u64);
        gnnav_par::par_chunks(&mut out.data, ROW_BLOCK * m, grain, |off, out_block| {
            let i0 = off / m;
            // `j` outer so one `B` row is reused by the whole row
            // block while it is still cache-resident. Every element
            // is an independent dot product, so the walk order is
            // free.
            for j in 0..m {
                let b_row = &b[j * k_dim..(j + 1) * k_dim];
                for (r, out_row) in out_block.chunks_mut(m).enumerate() {
                    let a_row = &a[(i0 + r) * k_dim..(i0 + r + 1) * k_dim];
                    out_row[j] = dot_lanes(a_row, b_row);
                }
            }
        });
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds `other` elementwise in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Adds the row vector `bias` to every row in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// ReLU forward in place; returns the activation mask for backward.
    pub fn relu_inplace(&mut self) -> Vec<bool> {
        let mut mask = Vec::new();
        self.relu_inplace_with(&mut mask);
        mask
    }

    /// ReLU forward in place, writing the activation mask into `mask`
    /// (cleared first). Reuses `mask`'s capacity so the training hot
    /// path does not allocate.
    pub fn relu_inplace_with(&mut self, mask: &mut Vec<bool>) {
        mask.clear();
        mask.reserve(self.data.len());
        for x in &mut self.data {
            let active = *x > 0.0;
            mask.push(active);
            if !active {
                *x = 0.0;
            }
        }
    }

    /// ReLU backward: zeroes gradient entries where `mask` is false.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len()` differs from the element count.
    pub fn relu_backward_inplace(&mut self, mask: &[bool]) {
        assert_eq!(mask.len(), self.data.len(), "mask length mismatch");
        for (x, &m) in self.data.iter_mut().zip(mask) {
            if !m {
                *x = 0.0;
            }
        }
    }

    /// Row-wise softmax in place (numerically stabilized).
    pub fn softmax_rows_inplace(&mut self) {
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            if sum > 0.0 {
                for x in row.iter_mut() {
                    *x /= sum;
                }
            }
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::eye(3)), a);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(a.matmul_at_b(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        // matmul_a_bt reduces over LANE-way partial sums, so it agrees
        // with the sequential-reduction matmul to rounding, not bits.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 1.0]]);
        let got = a.matmul_a_bt(&b);
        let expect = a.matmul(&b.transpose());
        for (x, y) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "matmul dim mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn relu_roundtrip() {
        let mut m = Matrix::from_rows(&[&[-1.0, 2.0], &[0.0, -3.0]]);
        let mask = m.relu_inplace();
        assert_eq!(m.row(0), &[0.0, 2.0]);
        assert_eq!(mask, vec![false, true, false, false]);
        let mut g = Matrix::from_rows(&[&[5.0, 5.0], &[5.0, 5.0]]);
        g.relu_backward_inplace(&mask);
        assert_eq!(g.row(0), &[0.0, 5.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[100.0, 100.0, 100.0]]);
        m.softmax_rows_inplace();
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!((m.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn broadcast_and_scale() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        m.scale(2.0);
        assert_eq!(m.row(1), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn norm_of_unit() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_checks_size() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn into_variants_overwrite_stale_contents() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut out = Matrix::from_rows(&[&[9.9, 9.9], &[9.9, 9.9]]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        a.matmul_at_b_into(&b, &mut out);
        assert_eq!(out, a.matmul_at_b(&b));
        a.matmul_a_bt_into(&b, &mut out);
        assert_eq!(out, a.matmul_a_bt(&b));
    }

    #[test]
    fn wide_matmul_exercises_column_tiles() {
        // cols > COL_TILE so the tiled path takes more than one tile.
        let k = 3;
        let n = super::COL_TILE + 37;
        let a = Matrix::from_vec(2, k, (0..2 * k).map(|i| (i as f32) * 0.5 - 1.0).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|i| ((i % 17) as f32) * 0.25).collect());
        let c = a.matmul(&b);
        // Reference: naive triple loop.
        for i in 0..2 {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.get(i, kk) * b.get(kk, j);
                }
                assert_eq!(c.get(i, j), acc, "mismatch at ({i},{j})");
            }
        }
    }

    /// Naive triple-loop reference with the same per-element
    /// reduction order as the saxpy-form kernels.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let av = a.get(i, k);
                for j in 0..b.cols() {
                    out.set(i, j, out.get(i, j) + av * b.get(k, j));
                }
            }
        }
        out
    }

    #[test]
    fn lane_kernels_match_naive_bitwise_across_shapes() {
        // Shapes straddling every lane/unroll boundary: k and n below,
        // at, and above LANE and KU, including scalar-tail-only cases.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 5),
            (3, super::KU, super::LANE),
            (2, super::KU + 1, super::LANE - 1),
            (2, 2 * super::KU + 3, super::LANE + 3),
            (5, 17, 2 * super::LANE + 7),
            (2, 3, super::COL_TILE + 9),
        ] {
            let a = Matrix::from_vec(m, k, (0..m * k).map(|i| (i as f32) * 0.37 - 1.1).collect());
            let b = Matrix::from_vec(
                k,
                n,
                (0..k * n).map(|i| ((i % 23) as f32) * 0.21 - 2.0).collect(),
            );
            let got = a.matmul(&b);
            let expect = naive_matmul(&a, &b);
            for (i, (x, y)) in got.as_slice().iter().zip(expect.as_slice()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "({m}x{k}x{n}) element {i}: {x} vs {y}");
            }
            // at_b keeps the same sequential reduction order.
            let atb = a.matmul_at_b(&got);
            let atb_expect = naive_matmul(&a.transpose(), &got);
            for (x, y) in atb.as_slice().iter().zip(atb_expect.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "at_b ({m}x{k}x{n})");
            }
        }
    }

    #[test]
    fn degenerate_shapes_do_not_panic() {
        // Zero rows / zero cols / zero reduction dims on all variants.
        for &(m, k, n) in &[(0usize, 3usize, 4usize), (3, 0, 4), (3, 4, 0), (0, 0, 0)] {
            let a = Matrix::zeros(m, k);
            let b = Matrix::zeros(k, n);
            let c = a.matmul(&b);
            assert_eq!((c.rows(), c.cols()), (m, n));
            assert!(c.as_slice().iter().all(|&x| x == 0.0));
            let atb = a.matmul_at_b(&Matrix::zeros(m, n));
            assert_eq!((atb.rows(), atb.cols()), (k, n));
            let abt = a.matmul_a_bt(&Matrix::zeros(n, k));
            assert_eq!((abt.rows(), abt.cols()), (m, n));
            assert!(abt.as_slice().iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn dot_lanes_handles_short_and_tail_lengths() {
        for len in [0usize, 1, 3, super::LANE - 1, super::LANE, super::LANE + 1, 37] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32) * 0.5 - 1.0).collect();
            let b: Vec<f32> = (0..len).map(|i| ((i * 7 % 5) as f32) - 2.0).collect();
            let expect: f64 =
                a.iter().zip(&b).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum::<f64>();
            let got = super::dot_lanes(&a, &b);
            assert!((f64::from(got) - expect).abs() < 1e-4, "len {len}: {got} vs {expect}");
        }
    }

    #[test]
    fn kernel_stats_count_flops() {
        let before = kernel_stats();
        let a = Matrix::zeros(4, 5);
        let b = Matrix::zeros(5, 6);
        let _ = a.matmul(&b);
        let after = kernel_stats();
        assert!(after.matmul_calls > before.matmul_calls);
        assert!(after.matmul_flops >= before.matmul_flops + 2 * 4 * 5 * 6);
    }

    #[test]
    fn relu_inplace_with_reuses_mask() {
        let mut m = Matrix::from_rows(&[&[-1.0, 2.0]]);
        let mut mask = Vec::with_capacity(16);
        m.relu_inplace_with(&mut mask);
        assert_eq!(mask, vec![false, true]);
        let mut m2 = Matrix::from_rows(&[&[3.0, -4.0]]);
        m2.relu_inplace_with(&mut mask);
        assert_eq!(mask, vec![true, false]);
    }
}
