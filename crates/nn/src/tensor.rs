//! Minimal dense row-major f32 matrix used by the NN substrate.
//!
//! This is deliberately small: the GNN layers need matmul, transpose
//! variants, elementwise maps, and row reductions — nothing more. The
//! matmul uses an i-k-j loop order over contiguous rows so the
//! compiler can autovectorize the inner accumulation.
//!
//! # Parallelism and determinism
//!
//! The three matmul kernels are cache-blocked over output-column tiles
//! and row-parallel over `gnnav_par`: output rows are split into
//! static chunks and each chunk runs the identical serial inner loop.
//! Because every output element is always accumulated in the same
//! order (`k` ascending, with the same zero-skip tests), results are
//! **bitwise identical** for any worker count — the thread pool only
//! changes wall time, never a single bit of output.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Output-column tile width (f32 elements) for the blocked matmuls:
/// one tile of the output row plus a tile of a `B` row stay resident
/// in L1 while the kernel streams over `k`.
const COL_TILE: usize = 128;

/// Minimum FLOPs a worker must have before the kernels fan out.
const PAR_GRAIN_FLOPS: u64 = 65_536;

static MATMUL_CALLS: AtomicU64 = AtomicU64::new(0);
static MATMUL_FLOPS: AtomicU64 = AtomicU64::new(0);

/// Cumulative process-wide dense-kernel counters; see [`kernel_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Matmul-family kernel invocations.
    pub matmul_calls: u64,
    /// Multiply-add FLOPs issued by the matmul family (`2 * m * k * n`
    /// per call, counting skipped zero terms — the classical bound).
    pub matmul_flops: u64,
}

/// Snapshot of the dense-kernel counters. Deltas around a workload
/// give its compute volume; divided by wall time, its GFLOP/s.
pub fn kernel_stats() -> KernelStats {
    KernelStats {
        matmul_calls: MATMUL_CALLS.load(Ordering::Relaxed),
        matmul_flops: MATMUL_FLOPS.load(Ordering::Relaxed),
    }
}

#[inline]
fn record_matmul(m: usize, k: usize, n: usize) {
    MATMUL_CALLS.fetch_add(1, Ordering::Relaxed);
    MATMUL_FLOPS.fetch_add(2 * (m as u64) * (k as u64) * (n as u64), Ordering::Relaxed);
}

/// Rows per worker needed to amortize a spawn, given per-row FLOPs.
#[inline]
fn grain_rows(flops_per_row: u64) -> usize {
    (PAR_GRAIN_FLOPS / flops_per_row.max(1)).max(1) as usize
}

/// A dense row-major `rows x cols` matrix of `f32`.
///
/// # Example
///
/// ```
/// use gnnav_nn::tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.get(1, 0), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from an owned buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices (for tests and examples).
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The raw row-major buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// `self * other` (standard matmul).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self * other`, written into `out` (fully overwritten). The
    /// allocation-free form of [`Matrix::matmul`]; row-parallel and
    /// column-tiled, bitwise identical to the serial i-k-j kernel.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows` or `out` has the wrong
    /// shape.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul dim mismatch");
        assert_eq!((out.rows, out.cols), (self.rows, other.cols), "matmul out shape mismatch");
        record_matmul(self.rows, self.cols, other.cols);
        let n = other.cols;
        let k_dim = self.cols;
        out.data.fill(0.0);
        if n == 0 || self.rows == 0 {
            return;
        }
        let a = &self.data;
        let b = &other.data;
        let grain = grain_rows(2 * k_dim as u64 * n as u64);
        gnnav_par::par_chunks(&mut out.data, n, grain, |off, out_row| {
            let i = off / n;
            let a_row = &a[i * k_dim..(i + 1) * k_dim];
            // Per output element the accumulation order is k ascending
            // with the same zero skips as the untiled loop: column
            // tiling only reorders work *across* elements.
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + COL_TILE).min(n);
                let out_tile = &mut out_row[j0..j1];
                for (k, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let b_tile = &b[k * n + j0..k * n + j1];
                    for (o, &bv) in out_tile.iter_mut().zip(b_tile) {
                        *o += av * bv;
                    }
                }
                j0 = j1;
            }
        });
    }

    /// `self^T * other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn matmul_at_b(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_at_b_into(other, &mut out);
        out
    }

    /// `self^T * other`, written into `out` (fully overwritten).
    ///
    /// Parallel over *output* rows (columns of `self`): each output
    /// row gathers down its column of `self` with `r` ascending —
    /// exactly the per-element order (and zero skips) of the serial
    /// scatter kernel, so results are bitwise identical.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows` or `out` has the wrong
    /// shape.
    pub fn matmul_at_b_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "matmul_at_b dim mismatch");
        assert_eq!((out.rows, out.cols), (self.cols, other.cols), "matmul_at_b out shape mismatch");
        record_matmul(self.cols, self.rows, other.cols);
        let n = other.cols;
        let k_dim = self.cols;
        let rows = self.rows;
        out.data.fill(0.0);
        if n == 0 || k_dim == 0 {
            return;
        }
        let a = &self.data;
        let b = &other.data;
        let grain = grain_rows(2 * rows as u64 * n as u64);
        gnnav_par::par_chunks(&mut out.data, n, grain, |off, out_row| {
            let k = off / n;
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + COL_TILE).min(n);
                let out_tile = &mut out_row[j0..j1];
                for r in 0..rows {
                    let av = a[r * k_dim + k];
                    if av == 0.0 {
                        continue;
                    }
                    let b_tile = &b[r * n + j0..r * n + j1];
                    for (o, &bv) in out_tile.iter_mut().zip(b_tile) {
                        *o += av * bv;
                    }
                }
                j0 = j1;
            }
        });
    }

    /// `self * other^T` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_a_bt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_a_bt_into(other, &mut out);
        out
    }

    /// `self * other^T`, written into `out` (fully overwritten).
    /// Row-parallel; each element is one dot product computed in the
    /// serial order.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols` or `out` has the wrong
    /// shape.
    pub fn matmul_a_bt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_a_bt dim mismatch");
        assert_eq!((out.rows, out.cols), (self.rows, other.rows), "matmul_a_bt out shape mismatch");
        record_matmul(self.rows, self.cols, other.rows);
        let m = other.rows;
        let k_dim = self.cols;
        if m == 0 || self.rows == 0 {
            return;
        }
        let a = &self.data;
        let b = &other.data;
        let grain = grain_rows(2 * k_dim as u64 * m as u64);
        gnnav_par::par_chunks(&mut out.data, m, grain, |off, out_row| {
            let i = off / m;
            let a_row = &a[i * k_dim..(i + 1) * k_dim];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &b[j * k_dim..(j + 1) * k_dim];
                let mut acc = 0.0f32;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                *o = acc;
            }
        });
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds `other` elementwise in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Adds the row vector `bias` to every row in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// ReLU forward in place; returns the activation mask for backward.
    pub fn relu_inplace(&mut self) -> Vec<bool> {
        let mut mask = Vec::new();
        self.relu_inplace_with(&mut mask);
        mask
    }

    /// ReLU forward in place, writing the activation mask into `mask`
    /// (cleared first). Reuses `mask`'s capacity so the training hot
    /// path does not allocate.
    pub fn relu_inplace_with(&mut self, mask: &mut Vec<bool>) {
        mask.clear();
        mask.reserve(self.data.len());
        for x in &mut self.data {
            let active = *x > 0.0;
            mask.push(active);
            if !active {
                *x = 0.0;
            }
        }
    }

    /// ReLU backward: zeroes gradient entries where `mask` is false.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len()` differs from the element count.
    pub fn relu_backward_inplace(&mut self, mask: &[bool]) {
        assert_eq!(mask.len(), self.data.len(), "mask length mismatch");
        for (x, &m) in self.data.iter_mut().zip(mask) {
            if !m {
                *x = 0.0;
            }
        }
    }

    /// Row-wise softmax in place (numerically stabilized).
    pub fn softmax_rows_inplace(&mut self) {
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            if sum > 0.0 {
                for x in row.iter_mut() {
                    *x /= sum;
                }
            }
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::eye(3)), a);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(a.matmul_at_b(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 1.0]]);
        assert_eq!(a.matmul_a_bt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    #[should_panic(expected = "matmul dim mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn relu_roundtrip() {
        let mut m = Matrix::from_rows(&[&[-1.0, 2.0], &[0.0, -3.0]]);
        let mask = m.relu_inplace();
        assert_eq!(m.row(0), &[0.0, 2.0]);
        assert_eq!(mask, vec![false, true, false, false]);
        let mut g = Matrix::from_rows(&[&[5.0, 5.0], &[5.0, 5.0]]);
        g.relu_backward_inplace(&mask);
        assert_eq!(g.row(0), &[0.0, 5.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[100.0, 100.0, 100.0]]);
        m.softmax_rows_inplace();
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!((m.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn broadcast_and_scale() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        m.scale(2.0);
        assert_eq!(m.row(1), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn norm_of_unit() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_checks_size() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn into_variants_overwrite_stale_contents() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut out = Matrix::from_rows(&[&[9.9, 9.9], &[9.9, 9.9]]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        a.matmul_at_b_into(&b, &mut out);
        assert_eq!(out, a.matmul_at_b(&b));
        a.matmul_a_bt_into(&b, &mut out);
        assert_eq!(out, a.matmul_a_bt(&b));
    }

    #[test]
    fn wide_matmul_exercises_column_tiles() {
        // cols > COL_TILE so the tiled path takes more than one tile.
        let k = 3;
        let n = super::COL_TILE + 37;
        let a = Matrix::from_vec(2, k, (0..2 * k).map(|i| (i as f32) * 0.5 - 1.0).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|i| ((i % 17) as f32) * 0.25).collect());
        let c = a.matmul(&b);
        // Reference: naive triple loop.
        for i in 0..2 {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.get(i, kk) * b.get(kk, j);
                }
                assert_eq!(c.get(i, j), acc, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn kernel_stats_count_flops() {
        let before = kernel_stats();
        let a = Matrix::zeros(4, 5);
        let b = Matrix::zeros(5, 6);
        let _ = a.matmul(&b);
        let after = kernel_stats();
        assert!(after.matmul_calls > before.matmul_calls);
        assert!(after.matmul_flops >= before.matmul_flops + 2 * 4 * 5 * 6);
    }

    #[test]
    fn relu_inplace_with_reuses_mask() {
        let mut m = Matrix::from_rows(&[&[-1.0, 2.0]]);
        let mut mask = Vec::with_capacity(16);
        m.relu_inplace_with(&mut mask);
        assert_eq!(mask, vec![false, true]);
        let mut m2 = Matrix::from_rows(&[&[3.0, -4.0]]);
        m2.relu_inplace_with(&mut mask);
        assert_eq!(mask, vec![true, false]);
    }
}
