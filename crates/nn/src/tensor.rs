//! Minimal dense row-major f32 matrix used by the NN substrate.
//!
//! This is deliberately small: the GNN layers need matmul, transpose
//! variants, elementwise maps, and row reductions — nothing more. The
//! matmul uses an i-k-j loop order over contiguous rows so the
//! compiler can autovectorize the inner accumulation.

use std::fmt;

/// A dense row-major `rows x cols` matrix of `f32`.
///
/// # Example
///
/// ```
/// use gnnav_nn::tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.get(1, 0), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from an owned buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices (for tests and examples).
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The raw row-major buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// `self * other` (standard matmul).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dim mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T * other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn matmul_at_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_at_b dim mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        let n = other.cols;
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * other^T` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_a_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_a_bt dim mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds `other` elementwise in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Adds the row vector `bias` to every row in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// ReLU forward in place; returns the activation mask for backward.
    pub fn relu_inplace(&mut self) -> Vec<bool> {
        let mut mask = Vec::with_capacity(self.data.len());
        for x in &mut self.data {
            let active = *x > 0.0;
            mask.push(active);
            if !active {
                *x = 0.0;
            }
        }
        mask
    }

    /// ReLU backward: zeroes gradient entries where `mask` is false.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len()` differs from the element count.
    pub fn relu_backward_inplace(&mut self, mask: &[bool]) {
        assert_eq!(mask.len(), self.data.len(), "mask length mismatch");
        for (x, &m) in self.data.iter_mut().zip(mask) {
            if !m {
                *x = 0.0;
            }
        }
    }

    /// Row-wise softmax in place (numerically stabilized).
    pub fn softmax_rows_inplace(&mut self) {
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            if sum > 0.0 {
                for x in row.iter_mut() {
                    *x /= sum;
                }
            }
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::eye(3)), a);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(a.matmul_at_b(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, 1.0]]);
        assert_eq!(a.matmul_a_bt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    #[should_panic(expected = "matmul dim mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn relu_roundtrip() {
        let mut m = Matrix::from_rows(&[&[-1.0, 2.0], &[0.0, -3.0]]);
        let mask = m.relu_inplace();
        assert_eq!(m.row(0), &[0.0, 2.0]);
        assert_eq!(mask, vec![false, true, false, false]);
        let mut g = Matrix::from_rows(&[&[5.0, 5.0], &[5.0, 5.0]]);
        g.relu_backward_inplace(&mask);
        assert_eq!(g.row(0), &[0.0, 5.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[100.0, 100.0, 100.0]]);
        m.softmax_rows_inplace();
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!((m.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn broadcast_and_scale() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        m.scale(2.0);
        assert_eq!(m.row(1), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn norm_of_unit() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_checks_size() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
