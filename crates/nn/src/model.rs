//! GNN model: a stack of layers with ReLU between them.

use crate::layers::{GatLayer, GcnLayer, Layer, MultiHeadGatLayer, ParamRef, SageLayer};
use crate::scratch::ScratchArena;
use crate::tensor::Matrix;
use gnnav_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The GNN architectures the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum ModelKind {
    /// Graph convolutional network (Kipf & Welling).
    Gcn,
    /// GraphSAGE with mean aggregator.
    Sage,
    /// Graph attention network, single head.
    Gat,
}

impl ModelKind {
    /// All model kinds.
    pub const ALL: [ModelKind; 3] = [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gat];

    /// Paper-style short name.
    pub fn short_name(self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::Sage => "SAGE",
            ModelKind::Gat => "GAT",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A multi-layer GNN: `L` graph layers with ReLU after every layer but
/// the last, which emits class logits.
///
/// # Example
///
/// ```
/// use gnnav_nn::{GnnModel, ModelKind};
///
/// let model = GnnModel::new(ModelKind::Sage, 16, 32, 4, 2, 7);
/// assert!(model.param_count() > 0);
/// assert_eq!(model.num_layers(), 2);
/// ```
#[derive(Debug)]
pub struct GnnModel {
    kind: ModelKind,
    layers: Vec<Box<dyn Layer>>,
    relu_masks: Vec<Vec<bool>>,
    dropout_masks: Vec<Vec<f32>>,
    dropout: f32,
    train_mode: bool,
    dropout_rng: StdRng,
    scratch: ScratchArena,
    in_dim: usize,
    hidden_dim: usize,
    out_dim: usize,
}

impl GnnModel {
    /// Builds a `num_layers`-layer model mapping `in_dim` features to
    /// `out_dim` class logits through `hidden_dim`-wide layers.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0`.
    pub fn new(
        kind: ModelKind,
        in_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        num_layers: usize,
        seed: u64,
    ) -> Self {
        assert!(num_layers > 0, "at least one layer required");
        let mut layers: Vec<Box<dyn Layer>> = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let li = if l == 0 { in_dim } else { hidden_dim };
            let lo = if l + 1 == num_layers { out_dim } else { hidden_dim };
            let lseed = seed.wrapping_add(101 * l as u64);
            let layer: Box<dyn Layer> = match kind {
                ModelKind::Gcn => Box::new(GcnLayer::new(li, lo, lseed)),
                ModelKind::Sage => Box::new(SageLayer::new(li, lo, lseed)),
                ModelKind::Gat => Box::new(GatLayer::new(li, lo, lseed)),
            };
            layers.push(layer);
        }
        GnnModel {
            kind,
            layers,
            relu_masks: Vec::new(),
            dropout_masks: Vec::new(),
            dropout: 0.0,
            train_mode: true,
            dropout_rng: StdRng::seed_from_u64(seed ^ 0xD0D0),
            scratch: ScratchArena::new(),
            in_dim,
            hidden_dim,
            out_dim,
        }
    }

    /// Enables inverted dropout with keep-probability `1 - p` on every
    /// hidden activation (applied only in train mode; a model-design
    /// optimization axis of the design space).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn set_dropout(&mut self, p: f32) {
        assert!((0.0..1.0).contains(&p), "dropout must be in [0, 1)");
        self.dropout = p;
    }

    /// Switches between training mode (dropout active) and evaluation
    /// mode (dropout off).
    pub fn set_train_mode(&mut self, train: bool) {
        self.train_mode = train;
    }

    /// Builds a multi-head GAT: like [`GnnModel::new`] with
    /// `ModelKind::Gat`, but each layer averages `num_heads`
    /// independent attention heads (the GAT paper's output-layer
    /// aggregation).
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0` or `num_heads == 0`.
    pub fn new_gat_multi_head(
        in_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        num_layers: usize,
        num_heads: usize,
        seed: u64,
    ) -> Self {
        assert!(num_layers > 0, "at least one layer required");
        let mut layers: Vec<Box<dyn Layer>> = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let li = if l == 0 { in_dim } else { hidden_dim };
            let lo = if l + 1 == num_layers { out_dim } else { hidden_dim };
            let lseed = seed.wrapping_add(101 * l as u64);
            layers.push(Box::new(MultiHeadGatLayer::new(li, lo, num_heads, lseed)));
        }
        GnnModel {
            kind: ModelKind::Gat,
            layers,
            relu_masks: Vec::new(),
            dropout_masks: Vec::new(),
            dropout: 0.0,
            train_mode: true,
            dropout_rng: StdRng::seed_from_u64(seed ^ 0xD0D0),
            scratch: ScratchArena::new(),
            in_dim,
            hidden_dim,
            out_dim,
        }
    }

    /// The architecture family.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Number of graph layers `L`.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Input feature dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Output (class) dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Total scalar parameter count `|Φ|`.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Forward pass over subgraph `g` with features `x`
    /// (`g.num_nodes() x in_dim`), returning class logits. Stores the
    /// intermediates needed by [`GnnModel::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of columns.
    pub fn forward(&mut self, g: &Graph, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim, "feature dim mismatch");
        let last = self.layers.len() - 1;
        // Mask buffers persist across batches; only their contents are
        // rewritten, so steady-state forward passes don't allocate.
        self.relu_masks.resize_with(last, Vec::new);
        self.dropout_masks.resize_with(last, Vec::new);
        let mut h: Option<Matrix> = None;
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let mut out = layer.forward(g, h.as_ref().unwrap_or(x), &mut self.scratch);
            if let Some(prev) = h.take() {
                self.scratch.recycle(prev);
            }
            if i != last {
                out.relu_inplace_with(&mut self.relu_masks[i]);
                let mask = &mut self.dropout_masks[i];
                mask.clear();
                if self.dropout > 0.0 && self.train_mode {
                    // Inverted dropout: kept units scaled so the
                    // expectation is unchanged at eval time.
                    let scale = 1.0 / (1.0 - self.dropout);
                    mask.reserve(out.as_slice().len());
                    for _ in 0..out.as_slice().len() {
                        mask.push(if self.dropout_rng.gen::<f32>() < self.dropout {
                            0.0
                        } else {
                            scale
                        });
                    }
                    for (v, &m) in out.as_mut_slice().iter_mut().zip(mask.iter()) {
                        *v *= m;
                    }
                }
            }
            h = Some(out);
        }
        h.expect("at least one layer")
    }

    /// Backward pass from the logit gradient; accumulates parameter
    /// gradients in every layer.
    ///
    /// # Panics
    ///
    /// Panics if called before [`GnnModel::forward`].
    pub fn backward(&mut self, g: &Graph, grad_logits: &Matrix) {
        let last = self.layers.len() - 1;
        let mut grad: Option<Matrix> = None;
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            if i != last {
                let gm = grad.as_mut().expect("downstream layer produced a gradient");
                let mask = &self.dropout_masks[i];
                if !mask.is_empty() {
                    for (gv, &m) in gm.as_mut_slice().iter_mut().zip(mask) {
                        *gv *= m;
                    }
                }
                gm.relu_backward_inplace(&self.relu_masks[i]);
            }
            let gin = layer.backward(g, grad.as_ref().unwrap_or(grad_logits), &mut self.scratch);
            if let Some(prev) = grad.take() {
                self.scratch.recycle(prev);
            }
            grad = Some(gin);
        }
        if let Some(last_grad) = grad {
            self.scratch.recycle(last_grad);
        }
    }

    /// Clears all parameter gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// All parameters in a stable order, for the optimizer.
    pub fn params_mut(&mut self) -> Vec<ParamRef<'_>> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    /// Streams all parameters to `f` in the same stable order as
    /// [`GnnModel::params_mut`], without allocating. Pair with
    /// `Adam::step_with` for an allocation-free optimizer step.
    pub fn for_each_param_mut(&mut self, f: &mut dyn FnMut(ParamRef<'_>)) {
        for layer in &mut self.layers {
            layer.for_each_param(f);
        }
    }

    /// Flattens every parameter scalar into one vector, in the stable
    /// [`GnnModel::params_mut`] traversal order (weights before bias
    /// per linear parameter). Used by checkpointing.
    pub fn param_vector(&mut self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.for_each_param_mut(&mut |p| match p {
            ParamRef::Linear(lin) => {
                out.extend_from_slice(lin.w.as_slice());
                out.extend_from_slice(&lin.b);
            }
            ParamRef::Vector(vp) => out.extend_from_slice(&vp.v),
        });
        out
    }

    /// Restores every parameter scalar from a vector captured by
    /// [`GnnModel::param_vector`] on an identically shaped model.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if `flat` does not hold
    /// exactly [`GnnModel::param_count`] scalars.
    pub fn load_param_vector(&mut self, flat: &[f32]) -> Result<(), String> {
        if flat.len() != self.param_count() {
            return Err(format!(
                "parameter vector holds {} scalars, model expects {}",
                flat.len(),
                self.param_count()
            ));
        }
        let mut pos = 0usize;
        self.for_each_param_mut(&mut |p| match p {
            ParamRef::Linear(lin) => {
                let w = lin.w.as_mut_slice();
                w.copy_from_slice(&flat[pos..pos + w.len()]);
                pos += w.len();
                let b_len = lin.b.len();
                lin.b.copy_from_slice(&flat[pos..pos + b_len]);
                pos += b_len;
            }
            ParamRef::Vector(vp) => {
                let v_len = vp.v.len();
                vp.v.copy_from_slice(&flat[pos..pos + v_len]);
                pos += v_len;
            }
        });
        Ok(())
    }

    /// The dropout-mask RNG state, for checkpointing.
    pub fn dropout_rng_state(&self) -> [u64; 4] {
        self.dropout_rng.state()
    }

    /// Restores the dropout-mask RNG stream position.
    pub fn set_dropout_rng_state(&mut self, s: [u64; 4]) {
        self.dropout_rng = StdRng::from_state(s);
    }

    /// The model's scratch arena. Matrices returned by
    /// [`GnnModel::forward`] borrow pooled storage; hand them (and any
    /// loss-gradient buffers) back here when done so the next batch
    /// reuses them.
    pub fn scratch_mut(&mut self) -> &mut ScratchArena {
        &mut self.scratch
    }

    /// Returns a matrix to the model's scratch pool.
    pub fn recycle(&mut self, m: Matrix) {
        self.scratch.recycle(m);
    }

    /// Estimated forward+backward FLOPs for one mini-batch with
    /// `num_nodes` nodes and `num_edges` edges (the paper's
    /// `f_compute` input). Backward is approximated as 2x forward.
    pub fn flops_per_batch(&self, num_nodes: usize, num_edges: usize) -> f64 {
        let n = num_nodes as f64;
        let e = num_edges as f64;
        let mut fwd = 0.0;
        for layer in &self.layers {
            let din = layer.in_dim() as f64;
            let dout = layer.out_dim() as f64;
            // Aggregate: one multiply-add per edge per input channel.
            fwd += 2.0 * e * din;
            // Combine: dense matmul.
            fwd += 2.0 * n * din * dout;
            if self.kind == ModelKind::Gat {
                // Attention logits + softmax + weighting.
                fwd += 6.0 * e * dout;
            }
            if self.kind == ModelKind::Sage {
                // Separate self transform.
                fwd += 2.0 * n * din * dout;
            }
        }
        fwd * 3.0
    }

    /// Estimated bytes of activation memory for a batch of `num_nodes`
    /// nodes (feeds `Γ_runtime` in the paper's Eq. 10), at
    /// `bytes_per_scalar` precision.
    pub fn activation_bytes(&self, num_nodes: usize, bytes_per_scalar: usize) -> usize {
        let mut scalars = 0usize;
        for layer in &self.layers {
            scalars += num_nodes * (layer.in_dim() + layer.out_dim());
        }
        scalars * bytes_per_scalar
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::glorot_uniform;
    use gnnav_graph::GraphBuilder;

    fn ring(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u32 {
            b.add_edge(v, ((v as usize + 1) % n) as u32);
        }
        b.symmetrize().build().expect("build")
    }

    #[test]
    fn forward_shapes() {
        let g = ring(6);
        let x = glorot_uniform(6, 8, 1);
        for kind in ModelKind::ALL {
            let mut m = GnnModel::new(kind, 8, 16, 3, 2, 5);
            let out = m.forward(&g, &x);
            assert_eq!(out.rows(), 6);
            assert_eq!(out.cols(), 3, "{kind}");
        }
    }

    #[test]
    fn single_layer_model_works() {
        let g = ring(4);
        let x = glorot_uniform(4, 5, 2);
        let mut m = GnnModel::new(ModelKind::Gcn, 5, 16, 2, 1, 3);
        let out = m.forward(&g, &x);
        assert_eq!(out.cols(), 2);
        m.backward(&g, &Matrix::zeros(4, 2));
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_rejected() {
        let _ = GnnModel::new(ModelKind::Gcn, 4, 4, 2, 0, 1);
    }

    #[test]
    fn model_gradient_check_end_to_end() {
        // Perturb one input and compare FD loss gradient against the
        // full model backward for a 2-layer SAGE.
        let g = ring(5);
        let x = glorot_uniform(5, 4, 7);
        let r = glorot_uniform(5, 3, 8);
        let mut m = GnnModel::new(ModelKind::Sage, 4, 6, 3, 2, 9);

        let loss = |m: &mut GnnModel, x: &Matrix| -> f32 {
            let out = m.forward(&g, x);
            out.as_slice().iter().zip(r.as_slice()).map(|(a, b)| a * b).sum()
        };
        let _ = loss(&mut m, &x);
        m.zero_grad();
        // Recover input gradient by probing through the first layer's
        // backward result: easiest is to re-run forward then backward.
        let out = m.forward(&g, &x);
        assert_eq!(out.rows(), 5);
        m.zero_grad();
        m.backward(&g, &r);
        // Spot-check parameter gradient of the first linear param.
        let analytic = match &mut m.params_mut()[0] {
            ParamRef::Linear(p) => p.gw.get(0, 0),
            ParamRef::Vector(_) => unreachable!("sage starts with linear"),
        };
        let eps = 1e-2f32;
        let bump = |m: &mut GnnModel, delta: f32| {
            if let ParamRef::Linear(p) = &mut m.params_mut()[0] {
                let v = p.w.get(0, 0);
                p.w.set(0, 0, v + delta);
            }
        };
        bump(&mut m, eps);
        let lp = loss(&mut m, &x);
        bump(&mut m, -2.0 * eps);
        let lm = loss(&mut m, &x);
        bump(&mut m, eps);
        let fd = (lp - lm) / (2.0 * eps);
        assert!((fd - analytic).abs() < 5e-2 * (1.0 + fd.abs()), "fd {fd} vs analytic {analytic}");
    }

    #[test]
    fn flops_scale_with_size() {
        let m = GnnModel::new(ModelKind::Gcn, 32, 64, 8, 2, 1);
        let small = m.flops_per_batch(100, 500);
        let large = m.flops_per_batch(1000, 5000);
        assert!(large > 5.0 * small);
    }

    #[test]
    fn gat_flops_exceed_gcn() {
        let gcn = GnnModel::new(ModelKind::Gcn, 32, 64, 8, 2, 1);
        let gat = GnnModel::new(ModelKind::Gat, 32, 64, 8, 2, 1);
        assert!(gat.flops_per_batch(100, 1000) > gcn.flops_per_batch(100, 1000));
    }

    #[test]
    fn activation_bytes_positive_and_scaling() {
        let m = GnnModel::new(ModelKind::Sage, 32, 64, 8, 2, 1);
        assert!(m.activation_bytes(10, 4) < m.activation_bytes(100, 4));
        assert_eq!(m.activation_bytes(10, 2) * 2, m.activation_bytes(10, 4));
    }

    #[test]
    fn param_count_matches_architecture() {
        let m = GnnModel::new(ModelKind::Gcn, 10, 20, 5, 2, 1);
        // Layer 1: 10*20 + 20; layer 2: 20*5 + 5.
        assert_eq!(m.param_count(), 10 * 20 + 20 + 20 * 5 + 5);
    }

    #[test]
    fn steady_state_training_does_not_allocate() {
        // After one warm-up batch per shape, forward+backward on
        // identical batches must not grow the arena.
        let g = ring(6);
        let x = glorot_uniform(6, 8, 1);
        let r = glorot_uniform(6, 3, 2);
        for kind in ModelKind::ALL {
            let mut m = GnnModel::new(kind, 8, 16, 3, 2, 5);
            for _ in 0..2 {
                let out = m.forward(&g, &x);
                m.zero_grad();
                m.backward(&g, &r);
                m.recycle(out);
            }
            let warm = m.scratch_mut().fresh_allocs();
            for _ in 0..3 {
                let out = m.forward(&g, &x);
                m.zero_grad();
                m.backward(&g, &r);
                m.recycle(out);
            }
            assert_eq!(
                m.scratch_mut().fresh_allocs(),
                warm,
                "{kind} allocated during steady-state batches"
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelKind::Sage.to_string(), "SAGE");
        assert_eq!(ModelKind::Gat.short_name(), "GAT");
    }
}

#[cfg(test)]
mod dropout_tests {
    use super::*;
    use crate::init::glorot_uniform;
    use gnnav_graph::GraphBuilder;

    fn ring(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u32 {
            b.add_edge(v, ((v as usize + 1) % n) as u32);
        }
        b.symmetrize().build().expect("build")
    }

    #[test]
    fn dropout_changes_training_forward_only() {
        let g = ring(8);
        let x = glorot_uniform(8, 6, 1);
        let mut m = GnnModel::new(ModelKind::Gcn, 6, 12, 3, 2, 2);
        m.set_train_mode(false);
        let clean = m.forward(&g, &x);
        m.set_dropout(0.5);
        // Eval mode: dropout inert.
        let eval_out = m.forward(&g, &x);
        assert_eq!(clean, eval_out);
        // Train mode: activations masked -> different output.
        m.set_train_mode(true);
        let train_out = m.forward(&g, &x);
        assert_ne!(clean, train_out);
    }

    #[test]
    fn dropout_gradient_matches_masked_forward() {
        // FD check THROUGH the dropout mask: use dropout 0.5 but a
        // fixed mask by re-seeding identically for each forward.
        let g = ring(5);
        let x = glorot_uniform(5, 4, 3);
        let r = glorot_uniform(5, 2, 4);
        let loss = |m: &mut GnnModel, x: &Matrix| -> f32 {
            m.dropout_rng = StdRng::seed_from_u64(99);
            let out = m.forward(&g, x);
            out.as_slice().iter().zip(r.as_slice()).map(|(a, b)| a * b).sum()
        };
        let mut m = GnnModel::new(ModelKind::Gcn, 4, 6, 2, 2, 5);
        m.set_dropout(0.5);
        let _ = loss(&mut m, &x);
        m.zero_grad();
        m.backward(&g, &r);
        let analytic = match &mut m.params_mut()[0] {
            ParamRef::Linear(p) => p.gw.get(0, 0),
            ParamRef::Vector(_) => unreachable!(),
        };
        let eps = 1e-2f32;
        let bump = |m: &mut GnnModel, d: f32| {
            if let ParamRef::Linear(p) = &mut m.params_mut()[0] {
                let v = p.w.get(0, 0);
                p.w.set(0, 0, v + d);
            }
        };
        bump(&mut m, eps);
        let lp = loss(&mut m, &x);
        bump(&mut m, -2.0 * eps);
        let lm = loss(&mut m, &x);
        let fd = (lp - lm) / (2.0 * eps);
        assert!((fd - analytic).abs() < 5e-2 * (1.0 + fd.abs()), "fd {fd} vs analytic {analytic}");
    }

    #[test]
    #[should_panic(expected = "dropout must be in [0, 1)")]
    fn dropout_range_validated() {
        let mut m = GnnModel::new(ModelKind::Gcn, 4, 4, 2, 2, 1);
        m.set_dropout(1.0);
    }
}

#[cfg(test)]
mod multi_head_model_tests {
    use super::*;
    use crate::init::glorot_uniform;
    use gnnav_graph::GraphBuilder;

    #[test]
    fn multi_head_model_trains_shapes() {
        let mut b = GraphBuilder::new(6);
        for v in 0..6u32 {
            b.add_edge(v, (v + 1) % 6);
        }
        let g = b.symmetrize().build().expect("build");
        let x = glorot_uniform(6, 5, 1);
        let mut m = GnnModel::new_gat_multi_head(5, 8, 3, 2, 4, 2);
        assert_eq!(m.kind(), ModelKind::Gat);
        let out = m.forward(&g, &x);
        assert_eq!((out.rows(), out.cols()), (6, 3));
        m.zero_grad();
        m.backward(&g, &Matrix::zeros(6, 3));
        // Four heads quadruple the per-layer parameter count.
        let single = GnnModel::new(ModelKind::Gat, 5, 8, 3, 2, 2);
        assert_eq!(m.param_count(), 4 * single.param_count());
    }
}
