//! Seeded weight initialization.

use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Glorot/Xavier-uniform initialized `rows x cols` matrix.
///
/// Entries are uniform in `±sqrt(6 / (rows + cols))`, the standard
/// initialization for tanh/ReLU GNN layers.
pub fn glorot_uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-limit..limit)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Uniform vector in `±limit`, used for attention parameter vectors.
pub fn uniform_vec(len: usize, limit: f32, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-limit..limit)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_within_limit() {
        let m = glorot_uniform(10, 20, 1);
        let limit = (6.0f32 / 30.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn glorot_deterministic() {
        assert_eq!(glorot_uniform(4, 4, 9), glorot_uniform(4, 4, 9));
        assert_ne!(glorot_uniform(4, 4, 9), glorot_uniform(4, 4, 10));
    }

    #[test]
    fn uniform_vec_len_and_limit() {
        let v = uniform_vec(16, 0.5, 2);
        assert_eq!(v.len(), 16);
        assert!(v.iter().all(|&x| x.abs() <= 0.5));
    }
}
