//! Offline mini `criterion`.
//!
//! A wall-clock benchmark harness with criterion's API shape
//! (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`,
//! `criterion_group!`/`criterion_main!`) but none of its statistics:
//! each benchmark is timed over an adaptively chosen iteration count
//! and reported as mean ns/iter on stdout. Good enough for A/B
//! comparisons inside one process (e.g. the metrics-overhead check in
//! `gnnav-bench`), deterministic to drive, and zero dependencies.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { name, sample_size: 10, _criterion: self }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.into().label, 10, &mut f);
        self
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A named set of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Times `f` with a borrowed input value.
    pub fn bench_with_input<T: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &T,
        mut f: impl FnMut(&mut Bencher, &T),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (report separator).
    pub fn finish(self) {
        println!();
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrates an iteration count targeting ~20 ms of work per sample,
/// runs `samples` samples, and prints the mean time per iteration.
fn run_benchmark(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration pass: one iteration, timed.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("  {label}: {} ns/iter ({total_iters} iters)", format_ns(mean_ns));
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3e}", ns)
    } else if ns >= 100.0 {
        format!("{:.0}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
