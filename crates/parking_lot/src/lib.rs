//! Offline subset of `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API shape the workspace relies on:
//! `lock()` / `read()` / `write()` return guards directly (no
//! `Result`), and [`Mutex::into_inner`] returns the value directly.
//! Poisoning is transparently ignored, mirroring parking_lot's
//! poison-free semantics.

use std::sync::{self, TryLockError};

/// Guard types are the std ones; only acquisition differs.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion with a panic-free, poison-free `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves
    /// uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader–writer lock with panic-free acquisition.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
