//! Sequence helpers (`rand::seq` subset).

use crate::{Rng, RngCore};

/// Slice extensions: in-place Fisher–Yates shuffle and uniform choice.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, unbiased).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(3));
        b.shuffle(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let v: Vec<u8> = vec![];
        assert!(v.choose(&mut StdRng::seed_from_u64(1)).is_none());
    }
}
