//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the exact surface the codebase uses: [`rngs::StdRng`]
//! (deterministic, seedable), the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — not the real
//! `StdRng` (ChaCha12), but statistically solid for simulation and,
//! critically, fully deterministic for a given seed on every platform.

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Low-level entropy source: everything else is derived from
/// [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution: uniform unit
    /// interval for floats, uniform bits for integers, fair coin for
    /// `bool`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The "standard" distribution for a type (see [`Rng::gen`]).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)` (`inclusive` widens to
    /// `[low, high]`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as u128) - (low as u128) + inclusive as u128;
                assert!(span > 0, "cannot sample from empty range");
                low + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128) - (low as i128) + inclusive as i128;
                assert!(span > 0, "cannot sample from empty range");
                low + (rng.next_u64() as i128 % span) as $t
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low <= high, "cannot sample from empty range");
                let unit = <$t as Standard>::sample(rng);
                low + (high - low) * unit
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_between(rng, low, high, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
