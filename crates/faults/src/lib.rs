//! Deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] is a declarative description of *which* fault
//! classes may fire, *where* (a site window), *how often* (a per-site
//! probability), and *how hard* (a magnitude), all derived from one
//! seed. The [`FaultInjector`] turns a plan into a pure function of
//! `(kind, site, attempt)`: the same plan always yields byte-identical
//! schedules, independent of thread interleaving or wall clock — which
//! is what makes chaos runs debuggable, diffable, and resumable.
//!
//! Sites are domain ordinals chosen by the instrumented layer: the
//! runtime backend keys batch-level faults by its global mini-batch
//! counter and NaN injection by the training-step counter; the
//! profiler keys worker faults by config index. `attempt` counts
//! retries of the same site, so a spec's [`FaultSpec::duration_attempts`]
//! bounds how long a transient fault persists under retry — the knob
//! that separates "survivable blip" from "persistent failure" in
//! tests.
//!
//! Draws are derived with a splitmix64-style finalizer over
//! `(plan seed, kind tag, site, spec index)` — no RNG state is
//! carried, so concurrent injection sites cannot perturb each other.

use gnnav_obs::json::{self, Value};
use gnnav_obs::names as metric;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Schema version of the fault-plan JSON format.
pub const FAULT_PLAN_SCHEMA_VERSION: u64 = 1;

/// The fault classes the simulator can express.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// Transient Γ_runtime spike: the per-batch memory claim is
    /// multiplied by the magnitude, typically forcing an OOM that the
    /// backend must retry or degrade around. Site = global batch.
    TransientOom,
    /// Link-bandwidth degradation: miss-transfer time is multiplied
    /// by the magnitude (a stall window when large). Site = global
    /// batch.
    LinkDegrade,
    /// The mini-batch sampler fails; the backend retries with
    /// backoff. Site = global batch.
    SamplerFailure,
    /// A profiler sweep worker crashes before executing its config.
    /// Site = config index.
    WorkerCrash,
    /// A profiler sweep worker straggles: it sleeps `magnitude`
    /// wall-seconds (capped by the profiler) before executing.
    /// Site = config index.
    Straggler,
    /// The training loss of a step is forced to NaN, exercising the
    /// backend's NaN guard. Site = global training step.
    NanLoss,
    /// The training process "dies" at an epoch boundary: the durable
    /// driver returns a typed error without finishing, leaving only
    /// the checkpoints written so far. Site = epoch index; attempt =
    /// the lineage's persisted kill count, so `duration_attempts`
    /// bounds how many times the same run may be killed.
    ProcessKill,
    /// The last durable write is torn: `magnitude` trailing bytes are
    /// truncated from the just-written store file. Site = epoch index.
    TornWrite,
    /// One stored byte is corrupted: the byte at offset `magnitude`
    /// (modulo file length) of the just-written store file gets a bit
    /// flipped. Site = epoch index.
    BitFlip,
}

impl FaultKind {
    /// Every kind, in schedule/tag order.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::TransientOom,
        FaultKind::LinkDegrade,
        FaultKind::SamplerFailure,
        FaultKind::WorkerCrash,
        FaultKind::Straggler,
        FaultKind::NanLoss,
        FaultKind::ProcessKill,
        FaultKind::TornWrite,
        FaultKind::BitFlip,
    ];

    /// Stable label used in JSON plans, metric names, and journal args.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TransientOom => "transient_oom",
            FaultKind::LinkDegrade => "link_degrade",
            FaultKind::SamplerFailure => "sampler_failure",
            FaultKind::WorkerCrash => "worker_crash",
            FaultKind::Straggler => "straggler",
            FaultKind::NanLoss => "nan_loss",
            FaultKind::ProcessKill => "process_kill",
            FaultKind::TornWrite => "torn_write",
            FaultKind::BitFlip => "bit_flip",
        }
    }

    /// Parses a [`label`](FaultKind::label) back into a kind.
    pub fn from_label(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.label() == s)
    }

    /// Domain-separation tag mixed into the hash draw, so two kinds
    /// never share a schedule even at the same site.
    fn tag(self) -> u64 {
        match self {
            FaultKind::TransientOom => 0x01,
            FaultKind::LinkDegrade => 0x02,
            FaultKind::SamplerFailure => 0x03,
            FaultKind::WorkerCrash => 0x04,
            FaultKind::Straggler => 0x05,
            FaultKind::NanLoss => 0x06,
            FaultKind::ProcessKill => 0x07,
            FaultKind::TornWrite => 0x08,
            FaultKind::BitFlip => 0x09,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One declarative fault rule inside a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Which fault class this rule injects.
    pub kind: FaultKind,
    /// Per-site firing probability in `[0, 1]`. `1.0` fires at every
    /// site in the window, `0.0` never fires.
    pub probability: f64,
    /// Kind-specific severity (claim multiplier, transfer-time
    /// multiplier, straggler seconds, ...). Unused by kinds that are
    /// binary (sampler failure, worker crash, NaN loss).
    pub magnitude: f64,
    /// First site (inclusive) the rule applies to; `None` = from 0.
    pub from: Option<u64>,
    /// Site bound (exclusive); `None` = unbounded.
    pub until: Option<u64>,
    /// When the site draw fires, only attempts `0..duration_attempts`
    /// of that site are injected — retry `duration_attempts` sees a
    /// clean run. `None` makes the fault persistent across attempts.
    pub duration_attempts: Option<u32>,
}

impl FaultSpec {
    /// A rule that always fires at every site, persistently, with
    /// magnitude 1 — customize from here.
    pub fn new(kind: FaultKind) -> Self {
        FaultSpec {
            kind,
            probability: 1.0,
            magnitude: 1.0,
            from: None,
            until: None,
            duration_attempts: None,
        }
    }

    /// Sets the per-site firing probability.
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = p;
        self
    }

    /// Sets the magnitude.
    pub fn with_magnitude(mut self, m: f64) -> Self {
        self.magnitude = m;
        self
    }

    /// Restricts the rule to sites in `[from, until)`.
    pub fn with_window(mut self, from: u64, until: u64) -> Self {
        self.from = Some(from);
        self.until = Some(until);
        self
    }

    /// Makes the fault transient: it clears after `attempts` retries
    /// of the same site.
    pub fn with_duration_attempts(mut self, attempts: u32) -> Self {
        self.duration_attempts = Some(attempts);
        self
    }

    fn applies(&self, site: u64, attempt: u32) -> bool {
        if self.from.is_some_and(|f| site < f) || self.until.is_some_and(|u| site >= u) {
            return false;
        }
        self.duration_attempts.is_none_or(|d| attempt < d)
    }
}

/// A seeded, declarative schedule of faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed every hash draw is derived from.
    pub seed: u64,
    /// The fault rules; for a given `(kind, site, attempt)` the first
    /// applicable rule whose draw fires wins.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, specs: Vec::new() }
    }

    /// Builder-style rule append.
    pub fn with_fault(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Validates every rule: probabilities in `[0, 1]`, finite
    /// non-negative magnitudes, non-empty windows.
    pub fn validate(&self) -> Result<(), FaultError> {
        for (i, s) in self.specs.iter().enumerate() {
            if !s.probability.is_finite() || !(0.0..=1.0).contains(&s.probability) {
                return Err(FaultError::Invalid(format!(
                    "spec {i} ({}): probability {} outside [0, 1]",
                    s.kind, s.probability
                )));
            }
            if !s.magnitude.is_finite() || s.magnitude < 0.0 {
                return Err(FaultError::Invalid(format!(
                    "spec {i} ({}): magnitude {} must be finite and >= 0",
                    s.kind, s.magnitude
                )));
            }
            if let (Some(f), Some(u)) = (s.from, s.until) {
                if f >= u {
                    return Err(FaultError::Invalid(format!(
                        "spec {i} ({}): empty site window [{f}, {u})",
                        s.kind
                    )));
                }
            }
        }
        Ok(())
    }

    /// Loads and parses a plan from a JSON file, tagging I/O failures
    /// with the offending path.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<FaultPlan, FaultError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| FaultError::Io(path.to_path_buf(), e.to_string()))?;
        FaultPlan::from_json(&text)
    }

    /// Parses a plan from its JSON form (see [`to_json`](Self::to_json)
    /// for the schema) and validates it.
    pub fn from_json(input: &str) -> Result<FaultPlan, FaultError> {
        let root = json::parse(input)
            .map_err(|e| FaultError::Parse(format!("{} at offset {}", e.message, e.offset)))?;
        let version = root
            .get("version")
            .and_then(Value::as_f64)
            .ok_or_else(|| FaultError::Parse("missing numeric 'version'".into()))?;
        if version != FAULT_PLAN_SCHEMA_VERSION as f64 {
            return Err(FaultError::Parse(format!(
                "unsupported fault-plan schema version {version} (expected {FAULT_PLAN_SCHEMA_VERSION})"
            )));
        }
        let seed = match root.get("seed") {
            Some(Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => *n as u64,
            // Seeds above 2^53 lose precision as JSON numbers, so the
            // writer emits them as decimal strings.
            Some(Value::Str(s)) => s
                .parse::<u64>()
                .map_err(|_| FaultError::Parse(format!("seed '{s}' is not a u64")))?,
            _ => return Err(FaultError::Parse("missing or invalid 'seed'".into())),
        };
        let faults = root
            .get("faults")
            .and_then(Value::as_arr)
            .ok_or_else(|| FaultError::Parse("missing 'faults' array".into()))?;
        let mut specs = Vec::with_capacity(faults.len());
        for (i, f) in faults.iter().enumerate() {
            // Reject unknown keys loudly: a typoed "magntiude" must
            // not silently fall back to the default.
            const KNOWN_KEYS: [&str; 6] =
                ["kind", "probability", "magnitude", "from", "until", "duration_attempts"];
            match f {
                Value::Obj(map) => {
                    if let Some(key) = map.keys().find(|k| !KNOWN_KEYS.contains(&k.as_str())) {
                        return Err(FaultError::Parse(format!(
                            "fault {i}: unknown key '{key}' (known keys: {})",
                            KNOWN_KEYS.join(", ")
                        )));
                    }
                }
                _ => return Err(FaultError::Parse(format!("fault {i}: not a JSON object"))),
            }
            let kind_label = f
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| FaultError::Parse(format!("fault {i}: missing 'kind'")))?;
            let kind = FaultKind::from_label(kind_label).ok_or_else(|| {
                FaultError::Parse(format!("fault {i}: unknown kind '{kind_label}'"))
            })?;
            let num = |key: &str, default: f64| -> Result<f64, FaultError> {
                match f.get(key) {
                    None | Some(Value::Null) => Ok(default),
                    Some(v) => v.as_f64().ok_or_else(|| {
                        FaultError::Parse(format!("fault {i}: '{key}' is not a number"))
                    }),
                }
            };
            let site = |key: &str| -> Result<Option<u64>, FaultError> {
                match f.get(key) {
                    None | Some(Value::Null) => Ok(None),
                    Some(v) => match v.as_f64() {
                        Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(Some(n as u64)),
                        _ => Err(FaultError::Parse(format!(
                            "fault {i}: '{key}' is not a non-negative integer"
                        ))),
                    },
                }
            };
            specs.push(FaultSpec {
                kind,
                probability: num("probability", 1.0)?,
                magnitude: num("magnitude", 1.0)?,
                from: site("from")?,
                until: site("until")?,
                duration_attempts: site("duration_attempts")?.map(|d| d as u32),
            });
        }
        let plan = FaultPlan { seed, specs };
        plan.validate()?;
        Ok(plan)
    }

    /// Serializes the plan:
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "seed": 42,
    ///   "faults": [
    ///     {"kind": "transient_oom", "probability": 1.0,
    ///      "magnitude": 8.0, "from": 0, "until": 4,
    ///      "duration_attempts": 2}
    ///   ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.specs.len() * 96);
        out.push_str("{\"version\": ");
        json::push_f64(&mut out, FAULT_PLAN_SCHEMA_VERSION as f64);
        out.push_str(", \"seed\": ");
        const MAX_EXACT: u64 = 1 << 53;
        if self.seed <= MAX_EXACT {
            json::push_f64(&mut out, self.seed as f64);
        } else {
            json::push_string(&mut out, &self.seed.to_string());
        }
        out.push_str(", \"faults\": [");
        for (i, s) in self.specs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"kind\": ");
            json::push_string(&mut out, s.kind.label());
            out.push_str(", \"probability\": ");
            json::push_f64(&mut out, s.probability);
            out.push_str(", \"magnitude\": ");
            json::push_f64(&mut out, s.magnitude);
            for (key, v) in [("from", s.from), ("until", s.until)] {
                if let Some(v) = v {
                    out.push_str(", \"");
                    out.push_str(key);
                    out.push_str("\": ");
                    json::push_f64(&mut out, v as f64);
                }
            }
            if let Some(d) = s.duration_attempts {
                out.push_str(", \"duration_attempts\": ");
                json::push_f64(&mut out, d as f64);
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Errors from plan parsing and validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// The JSON could not be parsed into a plan.
    Parse(String),
    /// The plan parsed but a rule is malformed.
    Invalid(String),
    /// The plan file could not be read (path, OS error).
    Io(std::path::PathBuf, String),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Parse(m) => write!(f, "fault plan parse error: {m}"),
            FaultError::Invalid(m) => write!(f, "invalid fault plan: {m}"),
            FaultError::Io(path, m) => write!(f, "fault plan {}: {m}", path.display()),
        }
    }
}

impl std::error::Error for FaultError {}

/// splitmix64 step: the standard finalizer that turns sequential or
/// structured inputs into well-distributed 64-bit outputs.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic uniform draw in `[0, 1)` keyed by the tuple.
fn unit_draw(seed: u64, tag: u64, site: u64, spec_index: u64) -> f64 {
    let h = splitmix64(splitmix64(splitmix64(splitmix64(seed) ^ tag) ^ site) ^ spec_index);
    // Top 53 bits → exact f64 in [0, 1).
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Stateless scheduler over a [`FaultPlan`], plus the obs plumbing
/// that records every injection.
#[derive(Debug)]
pub struct FaultInjector<'p> {
    plan: &'p FaultPlan,
    injected: AtomicU64,
}

impl<'p> FaultInjector<'p> {
    /// Binds an injector to a plan.
    pub fn new(plan: &'p FaultPlan) -> Self {
        FaultInjector { plan, injected: AtomicU64::new(0) }
    }

    /// Pure schedule query: the magnitude of the fault of `kind` at
    /// `(site, attempt)`, or `None` when the schedule is clean there.
    /// Identical inputs always yield identical answers.
    pub fn would_inject(&self, kind: FaultKind, site: u64, attempt: u32) -> Option<f64> {
        for (i, spec) in self.plan.specs.iter().enumerate() {
            if spec.kind != kind || !spec.applies(site, attempt) {
                continue;
            }
            // The draw is keyed by site only (not attempt): whether a
            // site is faulty is decided once; how long the fault lasts
            // under retry is the spec's duration_attempts.
            if unit_draw(self.plan.seed, kind.tag(), site, i as u64) < spec.probability {
                return Some(spec.magnitude);
            }
        }
        None
    }

    /// Like [`would_inject`](Self::would_inject), but records the
    /// injection: bumps `faults.injected` (+ the per-kind counter) and
    /// emits a journal instant on the `faults` track. `sim_us` anchors
    /// the event on the simulated clock when the caller has one.
    pub fn inject(
        &self,
        kind: FaultKind,
        site: u64,
        attempt: u32,
        sim_us: Option<f64>,
    ) -> Option<f64> {
        let magnitude = self.would_inject(kind, site, attempt)?;
        self.injected.fetch_add(1, Ordering::Relaxed);
        let metrics = gnnav_obs::global();
        if metrics.is_enabled() {
            metrics.add(metric::FAULTS_INJECTED, 1);
            metrics.add(&format!("{}{}", metric::FAULTS_INJECTED_PREFIX, kind.label()), 1);
        }
        let journal = metrics.journal();
        if journal.is_enabled() {
            journal.instant(
                metric::EVENT_FAULT,
                metric::TRACK_FAULTS,
                sim_us,
                vec![
                    ("kind".into(), kind.label().into()),
                    ("site".into(), site.into()),
                    ("attempt".into(), (attempt as u64).into()),
                    ("magnitude".into(), magnitude.into()),
                ],
            );
        }
        Some(magnitude)
    }

    /// Total injections recorded by [`inject`](Self::inject).
    pub fn total_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// First-attempt schedule preview for `kind` over `sites`:
    /// `(site, magnitude)` for every site that would inject. Pure —
    /// used by determinism tests and plan debugging.
    pub fn schedule(&self, kind: FaultKind, sites: std::ops::Range<u64>) -> Vec<(u64, f64)> {
        sites.filter_map(|s| self.would_inject(kind, s, 0).map(|m| (s, m))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::from_label(k.label()), Some(k));
        }
        assert_eq!(FaultKind::from_label("meteor_strike"), None);
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::new(7)
            .with_fault(FaultSpec::new(FaultKind::TransientOom).with_probability(0.5));
        let a = FaultInjector::new(&plan).schedule(FaultKind::TransientOom, 0..256);
        let b = FaultInjector::new(&plan).schedule(FaultKind::TransientOom, 0..256);
        assert_eq!(a, b);
        // p = 0.5 over 256 sites: some fire, some don't.
        assert!(!a.is_empty() && a.len() < 256, "fired {}", a.len());

        let other = FaultPlan::new(8)
            .with_fault(FaultSpec::new(FaultKind::TransientOom).with_probability(0.5));
        let c = FaultInjector::new(&other).schedule(FaultKind::TransientOom, 0..256);
        assert_ne!(a, c, "different seeds must yield different schedules");
    }

    #[test]
    fn kinds_do_not_share_schedules() {
        let plan = FaultPlan::new(42)
            .with_fault(FaultSpec::new(FaultKind::TransientOom).with_probability(0.5))
            .with_fault(FaultSpec::new(FaultKind::NanLoss).with_probability(0.5));
        let inj = FaultInjector::new(&plan);
        let oom = inj.schedule(FaultKind::TransientOom, 0..512);
        let nan = inj.schedule(FaultKind::NanLoss, 0..512);
        assert_ne!(oom, nan);
    }

    #[test]
    fn window_and_probability_extremes() {
        let plan = FaultPlan::new(3).with_fault(
            FaultSpec::new(FaultKind::LinkDegrade).with_magnitude(4.0).with_window(10, 20),
        );
        let inj = FaultInjector::new(&plan);
        assert_eq!(inj.would_inject(FaultKind::LinkDegrade, 9, 0), None);
        assert_eq!(inj.would_inject(FaultKind::LinkDegrade, 10, 0), Some(4.0));
        assert_eq!(inj.would_inject(FaultKind::LinkDegrade, 19, 0), Some(4.0));
        assert_eq!(inj.would_inject(FaultKind::LinkDegrade, 20, 0), None);

        let never = FaultPlan::new(3)
            .with_fault(FaultSpec::new(FaultKind::LinkDegrade).with_probability(0.0));
        assert!(FaultInjector::new(&never).schedule(FaultKind::LinkDegrade, 0..128).is_empty());
    }

    #[test]
    fn duration_attempts_bounds_persistence() {
        let plan = FaultPlan::new(1)
            .with_fault(FaultSpec::new(FaultKind::SamplerFailure).with_duration_attempts(2));
        let inj = FaultInjector::new(&plan);
        assert!(inj.would_inject(FaultKind::SamplerFailure, 5, 0).is_some());
        assert!(inj.would_inject(FaultKind::SamplerFailure, 5, 1).is_some());
        assert_eq!(inj.would_inject(FaultKind::SamplerFailure, 5, 2), None);

        let persistent = FaultPlan::new(1).with_fault(FaultSpec::new(FaultKind::SamplerFailure));
        let inj = FaultInjector::new(&persistent);
        assert!(inj.would_inject(FaultKind::SamplerFailure, 5, 1000).is_some());
    }

    #[test]
    fn first_applicable_spec_wins() {
        let plan = FaultPlan::new(9)
            .with_fault(FaultSpec::new(FaultKind::Straggler).with_magnitude(2.0).with_window(0, 4))
            .with_fault(FaultSpec::new(FaultKind::Straggler).with_magnitude(7.0));
        let inj = FaultInjector::new(&plan);
        assert_eq!(inj.would_inject(FaultKind::Straggler, 1, 0), Some(2.0));
        assert_eq!(inj.would_inject(FaultKind::Straggler, 6, 0), Some(7.0));
    }

    #[test]
    fn inject_counts_injections() {
        let plan = FaultPlan::new(2).with_fault(FaultSpec::new(FaultKind::WorkerCrash));
        let inj = FaultInjector::new(&plan);
        assert!(inj.inject(FaultKind::WorkerCrash, 0, 0, None).is_some());
        assert!(inj.inject(FaultKind::WorkerCrash, 1, 0, None).is_some());
        assert!(inj.inject(FaultKind::NanLoss, 0, 0, None).is_none());
        assert_eq!(inj.total_injected(), 2);
    }

    #[test]
    fn json_round_trip() {
        let plan = FaultPlan::new(0xDEAD_BEEF)
            .with_fault(
                FaultSpec::new(FaultKind::TransientOom)
                    .with_probability(0.25)
                    .with_magnitude(8.0)
                    .with_window(0, 64)
                    .with_duration_attempts(2),
            )
            .with_fault(FaultSpec::new(FaultKind::NanLoss).with_probability(0.1));
        let json = plan.to_json();
        let parsed = FaultPlan::from_json(&json).expect("round trip");
        assert_eq!(parsed, plan);
    }

    #[test]
    fn json_huge_seed_round_trips_via_string() {
        let plan = FaultPlan::new(u64::MAX).with_fault(FaultSpec::new(FaultKind::LinkDegrade));
        let parsed = FaultPlan::from_json(&plan.to_json()).expect("round trip");
        assert_eq!(parsed.seed, u64::MAX);
    }

    #[test]
    fn json_defaults_and_errors() {
        let minimal = r#"{"version": 1, "seed": 5, "faults": [{"kind": "nan_loss"}]}"#;
        let plan = FaultPlan::from_json(minimal).expect("minimal plan");
        assert_eq!(plan.specs[0].probability, 1.0);
        assert_eq!(plan.specs[0].magnitude, 1.0);
        assert_eq!(plan.specs[0].duration_attempts, None);

        for bad in [
            "not json",
            r#"{"seed": 5, "faults": []}"#,
            r#"{"version": 99, "seed": 5, "faults": []}"#,
            r#"{"version": 1, "faults": []}"#,
            r#"{"version": 1, "seed": 5, "faults": [{"kind": "meteor"}]}"#,
            r#"{"version": 1, "seed": 5, "faults": [{"kind": "nan_loss", "probability": 2.0}]}"#,
        ] {
            assert!(FaultPlan::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn json_unknown_key_rejected_with_name() {
        let typo =
            r#"{"version": 1, "seed": 5, "faults": [{"kind": "nan_loss", "magntiude": 2.0}]}"#;
        let err = FaultPlan::from_json(typo).expect_err("typoed key");
        let msg = err.to_string();
        assert!(msg.contains("magntiude"), "message names the bad key: {msg}");
        assert!(msg.contains("magnitude"), "message lists the known keys: {msg}");

        let non_obj = r#"{"version": 1, "seed": 5, "faults": [42]}"#;
        assert!(FaultPlan::from_json(non_obj).is_err());
    }

    #[test]
    fn json_probability_bounds_rejected_each_side() {
        for p in ["-0.5", "1.5", "1e9"] {
            let doc = format!(
                r#"{{"version": 1, "seed": 5, "faults": [{{"kind": "bit_flip", "probability": {p}}}]}}"#
            );
            let err = FaultPlan::from_json(&doc).expect_err("out-of-range p");
            assert!(err.to_string().contains("[0, 1]"), "p={p}: {err}");
        }
    }

    #[test]
    fn durability_kinds_round_trip_and_schedule() {
        for kind in [FaultKind::ProcessKill, FaultKind::TornWrite, FaultKind::BitFlip] {
            assert_eq!(FaultKind::from_label(kind.label()), Some(kind));
            let plan = FaultPlan::new(21).with_fault(FaultSpec::new(kind).with_window(2, 3));
            let parsed = FaultPlan::from_json(&plan.to_json()).expect("round trip");
            assert_eq!(parsed, plan);
            let inj = FaultInjector::new(&plan);
            assert_eq!(inj.schedule(kind, 0..8), vec![(2, 1.0)]);
        }
        // The three kinds draw from separated schedules.
        let plan = FaultPlan::new(33)
            .with_fault(FaultSpec::new(FaultKind::TornWrite).with_probability(0.5))
            .with_fault(FaultSpec::new(FaultKind::BitFlip).with_probability(0.5));
        let inj = FaultInjector::new(&plan);
        assert_ne!(
            inj.schedule(FaultKind::TornWrite, 0..512),
            inj.schedule(FaultKind::BitFlip, 0..512)
        );
    }

    #[test]
    fn process_kill_duration_bounds_lineage_kills() {
        // duration_attempts(1) kills a lineage exactly once: attempt 0
        // (first life) fires, attempt 1 (after one resume) is clean.
        let plan = FaultPlan::new(4)
            .with_fault(FaultSpec::new(FaultKind::ProcessKill).with_duration_attempts(1));
        let inj = FaultInjector::new(&plan);
        assert!(inj.would_inject(FaultKind::ProcessKill, 3, 0).is_some());
        assert_eq!(inj.would_inject(FaultKind::ProcessKill, 3, 1), None);
    }

    #[test]
    fn validate_rejects_malformed_specs() {
        let bad_prob =
            FaultPlan::new(0).with_fault(FaultSpec::new(FaultKind::NanLoss).with_probability(-0.1));
        assert!(matches!(bad_prob.validate(), Err(FaultError::Invalid(_))));
        let bad_mag = FaultPlan::new(0)
            .with_fault(FaultSpec::new(FaultKind::NanLoss).with_magnitude(f64::NAN));
        assert!(matches!(bad_mag.validate(), Err(FaultError::Invalid(_))));
        let empty_window =
            FaultPlan::new(0).with_fault(FaultSpec::new(FaultKind::NanLoss).with_window(5, 5));
        assert!(matches!(empty_window.validate(), Err(FaultError::Invalid(_))));
        assert!(FaultPlan::new(0).validate().is_ok());
    }

    #[test]
    fn load_names_the_missing_file() {
        let path = std::env::temp_dir().join("gnnav-faults-no-such-plan.json");
        let err = FaultPlan::load(&path).expect_err("missing file must fail");
        let FaultError::Io(p, msg) = &err else { panic!("expected Io, got {err:?}") };
        assert_eq!(p, &path);
        assert!(!msg.is_empty());
        assert!(err.to_string().contains("gnnav-faults-no-such-plan.json"), "{err}");
    }

    #[test]
    fn load_names_an_unreadable_path() {
        // A directory is not readable as a file; the error still names it.
        let dir = std::env::temp_dir().join(format!("gnnav-faults-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let err = FaultPlan::load(&dir).expect_err("directory must fail");
        assert!(matches!(&err, FaultError::Io(p, _) if p == &dir), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_surfaces_malformed_json_as_parse_error() {
        let path =
            std::env::temp_dir().join(format!("gnnav-faults-bad-{}.json", std::process::id()));
        std::fs::write(&path, "{not json").expect("write");
        let err = FaultPlan::load(&path).expect_err("malformed JSON must fail");
        assert!(matches!(err, FaultError::Parse(_)), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_round_trips_a_written_plan() {
        let path =
            std::env::temp_dir().join(format!("gnnav-faults-rt-{}.json", std::process::id()));
        let plan = FaultPlan::new(7)
            .with_fault(FaultSpec::new(FaultKind::LinkDegrade).with_probability(0.5));
        std::fs::write(&path, plan.to_json()).expect("write");
        let loaded = FaultPlan::load(&path).expect("load");
        assert_eq!(loaded, plan);
        std::fs::remove_file(&path).ok();
    }
}
