//! Umbrella crate for the GNNavigator workspace.
//!
//! This root package exists to host the repository-level `examples/`
//! and cross-crate integration `tests/`; it re-exports the
//! [`gnnavigator`] facade so examples read naturally. Depend on the
//! `gnnavigator` crate directly in real projects.

pub use gnnavigator::*;
