//! Chaos suite: drives every fault class end-to-end through the
//! runtime backend, the profiler, and the explorer, checking that the
//! recovery machinery degrades gracefully — bounded retries, the
//! degradation ladder, quarantine, nearest-feasible fallback — and
//! that failures surface as typed errors, never panics.
//!
//! Set `CHAOS_SEED=<u64>` to reseed every plan; the CI chaos job
//! sweeps a small seed matrix.

use gnnavigator::estimator::Profiler;
use gnnavigator::faults::{FaultInjector, FaultKind, FaultPlan, FaultSpec};
use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::runtime::{
    DesignSpace, ExecutionOptions, RecoveryPolicy, RuntimeBackend, RuntimeError, TrainingConfig,
};
use proptest::prelude::*;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC4A05)
}

fn small_dataset() -> Dataset {
    Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load")
}

fn backend() -> RuntimeBackend {
    RuntimeBackend::new(Platform::default_rtx4090())
}

fn config() -> TrainingConfig {
    TrainingConfig { batch_size: 64, hidden_dim: 16, ..Default::default() }
}

fn opts(plan: FaultPlan) -> ExecutionOptions {
    ExecutionOptions {
        epochs: 1,
        train_batches_cap: Some(4),
        fault_plan: Some(plan),
        ..Default::default()
    }
}

#[test]
fn transient_oom_is_survived_by_retries() {
    let plan = FaultPlan::new(chaos_seed()).with_fault(
        FaultSpec::new(FaultKind::TransientOom)
            .with_magnitude(1e12)
            .with_window(0, 2)
            .with_duration_attempts(2),
    );
    let report = backend().execute(&small_dataset(), &config(), &opts(plan)).expect("survives");
    assert!(report.recovery.retries > 0, "the spike must actually be retried");
    assert!(report.recovery.faults_injected > 0);
}

#[test]
fn persistent_oom_exhausts_the_ladder_with_a_typed_error() {
    let plan = FaultPlan::new(chaos_seed())
        .with_fault(FaultSpec::new(FaultKind::TransientOom).with_magnitude(1e15));
    let err = backend().execute(&small_dataset(), &config(), &opts(plan)).expect_err("exhausts");
    match err {
        RuntimeError::RetriesExhausted { what, attempts, .. } => {
            assert!(what.contains("degradation ladder"), "{what}");
            assert!(attempts > 0);
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
}

#[test]
fn link_degradation_slows_transfers_and_stalls_error_out() {
    let clean = backend().execute(&small_dataset(), &config(), &opts(FaultPlan::new(1))).unwrap();
    let degraded = backend()
        .execute(
            &small_dataset(),
            &config(),
            &opts(
                FaultPlan::new(chaos_seed())
                    .with_fault(FaultSpec::new(FaultKind::LinkDegrade).with_magnitude(100.0)),
            ),
        )
        .expect("slow but alive");
    assert!(
        degraded.perf.phases.transfer.as_secs() > clean.perf.phases.transfer.as_secs(),
        "a degraded link must cost simulated transfer time"
    );
    // A full stall (magnitude past the stall threshold) that never
    // clears exhausts the retry budget.
    let err = backend()
        .execute(
            &small_dataset(),
            &config(),
            &opts(
                FaultPlan::new(chaos_seed())
                    .with_fault(FaultSpec::new(FaultKind::LinkDegrade).with_magnitude(1e9)),
            ),
        )
        .expect_err("permanent stall");
    assert!(matches!(err, RuntimeError::RetriesExhausted { .. }), "{err}");
}

#[test]
fn sampler_failures_retry_then_surface_typed_errors() {
    let survived =
        backend()
            .execute(
                &small_dataset(),
                &config(),
                &opts(FaultPlan::new(chaos_seed()).with_fault(
                    FaultSpec::new(FaultKind::SamplerFailure).with_duration_attempts(1),
                )),
            )
            .expect("one failure per batch is absorbed");
    assert!(survived.recovery.retries > 0);
    let err = backend()
        .execute(
            &small_dataset(),
            &config(),
            &opts(
                FaultPlan::new(chaos_seed()).with_fault(FaultSpec::new(FaultKind::SamplerFailure)),
            ),
        )
        .expect_err("persistent failure");
    match err {
        RuntimeError::RetriesExhausted { what, .. } => {
            assert!(what.contains("sampling"), "{what}")
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
}

#[test]
fn nan_loss_guard_skips_steps_and_anneals_lr() {
    let plan = FaultPlan::new(chaos_seed())
        .with_fault(FaultSpec::new(FaultKind::NanLoss).with_window(0, 2));
    let report = backend().execute(&small_dataset(), &config(), &opts(plan)).expect("guarded");
    assert_eq!(report.recovery.nan_steps_skipped, 2);
    assert_eq!(report.recovery.lr_halvings, 2);
    assert!(report.loss_history.iter().all(|l| l.is_finite()), "NaN never reaches the history");
    // Exhausting the halving budget is a typed error, not a panic.
    let exhaust = ExecutionOptions {
        recovery: RecoveryPolicy { max_lr_halvings: 1, ..Default::default() },
        ..opts(FaultPlan::new(chaos_seed()).with_fault(FaultSpec::new(FaultKind::NanLoss)))
    };
    let err = backend().execute(&small_dataset(), &config(), &exhaust).expect_err("floor");
    assert!(matches!(err, RuntimeError::RetriesExhausted { .. }), "{err}");
}

#[test]
fn profiler_quarantines_crashing_configs_and_keeps_the_rest() {
    let dataset = small_dataset();
    let cfgs: Vec<TrainingConfig> = DesignSpace::standard()
        .sample(4, ModelKind::Sage, 3)
        .into_iter()
        .map(|mut c| {
            c.batch_size = 32;
            c.hidden_dim = 16;
            c
        })
        .collect();
    // Config 0 crashes on every attempt; the sweep must still produce
    // the other three records and name the quarantined one.
    let plan = FaultPlan::new(chaos_seed())
        .with_fault(FaultSpec::new(FaultKind::WorkerCrash).with_window(0, 1));
    let exec = ExecutionOptions {
        epochs: 1,
        train: true,
        train_batches_cap: Some(1),
        fault_plan: Some(plan),
        ..Default::default()
    };
    let profiler = Profiler::new(backend(), exec).with_threads(2);
    let report = profiler.profile_with_report(&dataset, &cfgs);
    assert_eq!(report.quarantined(), vec![0]);
    assert_eq!(report.db.len(), 3);
    assert!(report.failures[0].error.contains("worker crash"));
}

#[test]
fn profiler_stragglers_are_capped_not_fatal() {
    let dataset = small_dataset();
    let cfgs: Vec<TrainingConfig> = DesignSpace::standard()
        .sample(2, ModelKind::Sage, 3)
        .into_iter()
        .map(|mut c| {
            c.batch_size = 32;
            c.hidden_dim = 16;
            c
        })
        .collect();
    let plan = FaultPlan::new(chaos_seed())
        .with_fault(FaultSpec::new(FaultKind::Straggler).with_magnitude(1e6));
    let exec = ExecutionOptions {
        epochs: 1,
        train: true,
        train_batches_cap: Some(1),
        fault_plan: Some(plan),
        ..Default::default()
    };
    let report =
        Profiler::new(backend(), exec).with_threads(2).profile_with_report(&dataset, &cfgs);
    assert!(report.is_complete(), "a straggler delays the sweep, it never kills it");
}

#[test]
fn explorer_falls_back_when_constraints_are_unsatisfiable() {
    use gnnavigator::{Navigator, NavigatorOptions, Priority, RuntimeConstraints};
    let options = NavigatorOptions {
        profile_samples: 12,
        augmentation_graphs: 0,
        explore_budget: 100,
        profile_exec: ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(1),
            ..Default::default()
        },
        ..Default::default()
    };
    let mut nav = Navigator::new(small_dataset(), Platform::default_rtx4090(), ModelKind::Sage)
        .with_options(options);
    nav.prepare().expect("prepare");
    let impossible = RuntimeConstraints { max_time_s: Some(1e-12), ..RuntimeConstraints::none() };
    let result = nav
        .generate_guideline(Priority::Balance, &impossible)
        .expect("degrades to a fallback instead of failing");
    assert!(result.fallback.is_some());
    assert!(result.evaluated.is_empty());
}

fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        proptest::collection::vec(
            (0usize..FaultKind::ALL.len(), 0.0f64..=1.0, 0.5f64..4.0, 0u64..6, 1u64..8),
            0..4,
        ),
    )
        .prop_map(|(seed, specs)| {
            let mut plan = FaultPlan::new(seed);
            for (kind_idx, prob, magnitude, from, len) in specs {
                plan = plan.with_fault(
                    FaultSpec::new(FaultKind::ALL[kind_idx])
                        .with_probability(prob)
                        .with_magnitude(magnitude)
                        .with_window(from, from + len),
                );
            }
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The same `(seed, plan)` always yields the byte-identical fault
    /// schedule — the contract that makes chaos runs replayable.
    #[test]
    fn fault_schedule_is_a_pure_function_of_seed_and_plan(plan in plan_strategy()) {
        let a = FaultInjector::new(&plan);
        let b = FaultInjector::new(&plan);
        for kind in FaultKind::ALL {
            prop_assert_eq!(a.schedule(kind, 0..64), b.schedule(kind, 0..64));
        }
        // Round-tripping the plan through JSON preserves the schedule.
        let rt = FaultPlan::from_json(&plan.to_json()).expect("round trip");
        let c = FaultInjector::new(&rt);
        for kind in FaultKind::ALL {
            prop_assert_eq!(a.schedule(kind, 0..64), c.schedule(kind, 0..64));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Executions under the same plan are fully deterministic: same
    /// perf triple, same loss history, same recovery log — or the
    /// same typed error.
    #[test]
    fn faulted_executions_are_reproducible(seed in any::<u64>(), prob in 0.0f64..=0.6) {
        let plan = FaultPlan::new(seed)
            .with_fault(
                FaultSpec::new(FaultKind::TransientOom)
                    .with_probability(prob)
                    .with_magnitude(1e12)
                    .with_duration_attempts(1),
            )
            .with_fault(FaultSpec::new(FaultKind::NanLoss).with_probability(prob));
        let dataset = small_dataset();
        let run = || backend().execute(&dataset, &config(), &opts(plan.clone()));
        match (run(), run()) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.perf.epoch_time, b.perf.epoch_time);
                prop_assert_eq!(a.perf.peak_mem_bytes, b.perf.peak_mem_bytes);
                prop_assert_eq!(a.perf.accuracy, b.perf.accuracy);
                prop_assert_eq!(a.loss_history, b.loss_history);
                prop_assert_eq!(a.recovery, b.recovery);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "diverged: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }
}
