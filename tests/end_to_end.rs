//! Cross-crate integration: the full navigator pipeline.

use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::runtime::ExecutionOptions;
use gnnavigator::{Navigator, NavigatorOptions, Priority, RuntimeConstraints};

fn fast_options() -> NavigatorOptions {
    NavigatorOptions {
        profile_samples: 18,
        augmentation_graphs: 1,
        augmentation_nodes: 400,
        explore_budget: 150,
        profile_exec: ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(2),
            ..Default::default()
        },
        apply_exec: ExecutionOptions {
            epochs: 1,
            train_batches_cap: Some(3),
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn pipeline_produces_feasible_guideline_for_every_priority() {
    let dataset = Dataset::load_scaled(DatasetId::OgbnProducts, 0.02).expect("load");
    let mut nav = Navigator::new(dataset, Platform::default_rtx4090(), ModelKind::Sage)
        .with_options(fast_options());
    nav.prepare().expect("prepare");
    for priority in Priority::ALL {
        let result =
            nav.generate_guideline(priority, &RuntimeConstraints::none()).expect("explore");
        let report = nav.apply(&result.guideline).expect("apply");
        assert!(report.perf.epoch_time.as_secs() > 0.0, "{priority}");
        assert!(report.perf.peak_mem_bytes > 0, "{priority}");
        assert!(
            (0.0..=1.0).contains(&report.perf.accuracy),
            "{priority}: accuracy {}",
            report.perf.accuracy
        );
    }
}

#[test]
fn memory_constraint_is_respected_by_prediction() {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
    let mut nav = Navigator::new(dataset, Platform::default_rtx4090(), ModelKind::Sage)
        .with_options(fast_options());
    nav.prepare().expect("prepare");
    // Find an unconstrained pick, then squeeze below it.
    let free = nav
        .generate_guideline(Priority::ExTimeAccuracy, &RuntimeConstraints::none())
        .expect("explore");
    let budget = free.guideline.estimate.mem_bytes * 0.9;
    let constraints =
        RuntimeConstraints { max_mem_bytes: Some(budget), ..RuntimeConstraints::none() };
    let squeezed = nav
        .generate_guideline(Priority::ExTimeAccuracy, &constraints)
        .expect("explore under budget");
    assert!(
        squeezed.guideline.estimate.mem_bytes <= budget,
        "estimate {} exceeds budget {budget}",
        squeezed.guideline.estimate.mem_bytes
    );
    // Every surviving candidate satisfies the constraint.
    for c in &squeezed.evaluated {
        assert!(c.estimate.mem_bytes <= budget);
    }
}

#[test]
fn guideline_is_on_the_estimated_pareto_front() {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
    let mut nav = Navigator::new(dataset, Platform::default_rtx4090(), ModelKind::Sage)
        .with_options(fast_options());
    nav.prepare().expect("prepare");
    let result =
        nav.generate_guideline(Priority::Balance, &RuntimeConstraints::none()).expect("explore");
    assert!(
        result.front.iter().any(|&i| result.evaluated[i].config == result.guideline.config),
        "guideline must sit on the estimated Pareto front"
    );
}

#[test]
fn generate_all_covers_every_priority() {
    let dataset = Dataset::load_scaled(DatasetId::OgbnArxiv, 0.02).expect("load");
    let mut nav = Navigator::new(dataset, Platform::default_rtx4090(), ModelKind::Gcn)
        .with_options(fast_options());
    nav.prepare().expect("prepare");
    let all = nav.generate_all(&RuntimeConstraints::none()).expect("generate all");
    assert_eq!(all.len(), Priority::ALL.len());
    for (result, priority) in all.iter().zip(Priority::ALL) {
        assert_eq!(result.guideline.priority, priority);
    }
}
