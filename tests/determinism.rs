//! Cross-crate integration: the whole pipeline is deterministic given
//! its seeds — a requirement for reproducible evaluation tables.

use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::runtime::{ExecutionOptions, RuntimeBackend, TrainingConfig};
use gnnavigator::{Navigator, NavigatorOptions, Priority, RuntimeConstraints};

#[test]
fn dataset_generation_is_reproducible() {
    let a = Dataset::load_scaled(DatasetId::OgbnArxiv, 0.02).expect("load");
    let b = Dataset::load_scaled(DatasetId::OgbnArxiv, 0.02).expect("load");
    assert_eq!(a.graph(), b.graph());
    assert_eq!(a.features(), b.features());
}

#[test]
fn backend_execution_is_reproducible() {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let config = TrainingConfig { batch_size: 64, hidden_dim: 16, ..Default::default() };
    let opts = ExecutionOptions { epochs: 1, train_batches_cap: Some(2), ..Default::default() };
    let a = backend.execute(&dataset, &config, &opts).expect("run");
    let b = backend.execute(&dataset, &config, &opts).expect("run");
    assert_eq!(a.perf.epoch_time, b.perf.epoch_time);
    assert_eq!(a.perf.peak_mem_bytes, b.perf.peak_mem_bytes);
    assert_eq!(a.perf.accuracy, b.perf.accuracy);
    assert_eq!(a.loss_history, b.loss_history);
}

#[test]
fn backend_execution_identical_across_thread_counts() {
    // The compute kernels fan out across the gnnav-par pool; reports
    // must stay bitwise identical no matter how wide it runs. (The
    // thread limit is thread-local and `execute` runs inline, so it
    // governs every kernel in the run; limits above the core count
    // still spawn real workers.)
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let config = TrainingConfig { batch_size: 64, hidden_dim: 16, ..Default::default() };
    let opts = ExecutionOptions { epochs: 1, train_batches_cap: Some(2), ..Default::default() };
    let run = |threads: usize| {
        gnnav_par::with_thread_limit(threads, || backend.execute(&dataset, &config, &opts))
            .expect("run")
    };
    let serial = run(1);
    for threads in [2usize, 4, 8] {
        let wide = run(threads);
        assert_eq!(serial.perf.epoch_time, wide.perf.epoch_time, "{threads} threads");
        assert_eq!(serial.perf.accuracy, wide.perf.accuracy, "{threads} threads");
        assert_eq!(serial.loss_history, wide.loss_history, "{threads} threads");
    }
}

#[test]
fn bucketed_training_identical_across_thread_counts() {
    // End-to-end training determinism on a graph skewed enough that
    // the degree-aware schedule actually engages: Barabási–Albert
    // preferential attachment plus a star overlay yields hub rows
    // above the heavy threshold (single-row schedule groups, column
    // tiling) next to a leaf tail (batched light groups). Three full
    // train steps per model family — a single divergent bit in any
    // kernel would compound into the losses and final logits.
    use gnnavigator::graph::GraphBuilder;
    use gnnavigator::nn::{train::train_step, Adam, GnnModel};

    let ba = gnnavigator::graph::generators::barabasi_albert(250, 3, 17).expect("gen");
    let mut b = GraphBuilder::new(250);
    for (u, v) in ba.edges() {
        b.add_edge(u, v);
    }
    for v in 1..120u32 {
        b.add_edge(0, v);
    }
    let g = b.symmetrize().build().expect("build");
    let sched = g.agg_schedule();
    assert!(sched.fwd.heavy_groups > 0, "schedule must contain heavy groups");
    assert!(sched.bwd.heavy_groups > 0, "transpose schedule must contain heavy groups");

    let x = gnnavigator::nn::init::glorot_uniform(250, 12, 18);
    let labels: Vec<u16> = (0..250u16).map(|v| v % 4).collect();
    let targets: Vec<u32> = (0..250u32).collect();
    for kind in ModelKind::ALL {
        let run = |threads: usize| {
            gnnav_par::with_thread_limit(threads, || {
                let mut m = GnnModel::new(kind, 12, 16, 4, 2, 19);
                let mut opt = Adam::new(0.01);
                let losses: Vec<f32> = (0..3)
                    .map(|_| train_step(&mut m, &mut opt, &g, &x, &labels, &targets))
                    .collect();
                m.set_train_mode(false);
                (losses, m.forward(&g, &x))
            })
        };
        let (serial_losses, serial_logits) = run(1);
        for threads in [2usize, 4, 8] {
            let (losses, logits) = run(threads);
            for (i, (a, b)) in serial_losses.iter().zip(&losses).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{kind:?} loss {i} at {threads} threads");
            }
            for (i, (a, b)) in serial_logits.as_slice().iter().zip(logits.as_slice()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{kind:?} logit {i} at {threads} threads");
            }
        }
    }
}

#[test]
fn guideline_generation_is_reproducible() {
    let make = || {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
        let options = NavigatorOptions {
            profile_samples: 12,
            augmentation_graphs: 0,
            explore_budget: 100,
            profile_exec: ExecutionOptions {
                epochs: 1,
                train: true,
                train_batches_cap: Some(1),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut nav = Navigator::new(dataset, Platform::default_rtx4090(), ModelKind::Sage)
            .with_options(options);
        nav.prepare().expect("prepare");
        nav.generate_guideline(Priority::Balance, &RuntimeConstraints::none())
            .expect("explore")
            .guideline
            .config
            .summary()
    };
    assert_eq!(make(), make());
}
