//! Cross-crate integration: the whole pipeline is deterministic given
//! its seeds — a requirement for reproducible evaluation tables.

use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::runtime::{ExecutionOptions, RuntimeBackend, TrainingConfig};
use gnnavigator::{Navigator, NavigatorOptions, Priority, RuntimeConstraints};

#[test]
fn dataset_generation_is_reproducible() {
    let a = Dataset::load_scaled(DatasetId::OgbnArxiv, 0.02).expect("load");
    let b = Dataset::load_scaled(DatasetId::OgbnArxiv, 0.02).expect("load");
    assert_eq!(a.graph(), b.graph());
    assert_eq!(a.features(), b.features());
}

#[test]
fn backend_execution_is_reproducible() {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let config = TrainingConfig { batch_size: 64, hidden_dim: 16, ..Default::default() };
    let opts = ExecutionOptions { epochs: 1, train_batches_cap: Some(2), ..Default::default() };
    let a = backend.execute(&dataset, &config, &opts).expect("run");
    let b = backend.execute(&dataset, &config, &opts).expect("run");
    assert_eq!(a.perf.epoch_time, b.perf.epoch_time);
    assert_eq!(a.perf.peak_mem_bytes, b.perf.peak_mem_bytes);
    assert_eq!(a.perf.accuracy, b.perf.accuracy);
    assert_eq!(a.loss_history, b.loss_history);
}

#[test]
fn backend_execution_identical_across_thread_counts() {
    // The compute kernels fan out across the gnnav-par pool; reports
    // must stay bitwise identical no matter how wide it runs. (The
    // thread limit is thread-local and `execute` runs inline, so it
    // governs every kernel in the run; limits above the core count
    // still spawn real workers.)
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let config = TrainingConfig { batch_size: 64, hidden_dim: 16, ..Default::default() };
    let opts = ExecutionOptions { epochs: 1, train_batches_cap: Some(2), ..Default::default() };
    let run = |threads: usize| {
        gnnav_par::with_thread_limit(threads, || backend.execute(&dataset, &config, &opts))
            .expect("run")
    };
    let serial = run(1);
    for threads in [2usize, 4, 8] {
        let wide = run(threads);
        assert_eq!(serial.perf.epoch_time, wide.perf.epoch_time, "{threads} threads");
        assert_eq!(serial.perf.accuracy, wide.perf.accuracy, "{threads} threads");
        assert_eq!(serial.loss_history, wide.loss_history, "{threads} threads");
    }
}

#[test]
fn guideline_generation_is_reproducible() {
    let make = || {
        let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load");
        let options = NavigatorOptions {
            profile_samples: 12,
            augmentation_graphs: 0,
            explore_budget: 100,
            profile_exec: ExecutionOptions {
                epochs: 1,
                train: true,
                train_batches_cap: Some(1),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut nav = Navigator::new(dataset, Platform::default_rtx4090(), ModelKind::Sage)
            .with_options(options);
        nav.prepare().expect("prepare");
        nav.generate_guideline(Priority::Balance, &RuntimeConstraints::none())
            .expect("explore")
            .guideline
            .config
            .summary()
    };
    assert_eq!(make(), make());
}
