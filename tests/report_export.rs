//! Cross-crate integration: exporting measured results.

use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::runtime::{
    write_perf_csv, write_perf_jsonl, ExecutionOptions, RuntimeBackend, PERF_CSV_HEADER,
};
use gnnavigator::Template;

fn measured_rows() -> Vec<(String, gnnavigator::TrainingConfig, gnnavigator::runtime::Perf)> {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load");
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let opts = ExecutionOptions::timing_only();
    Template::ALL
        .iter()
        .map(|t| {
            let config = t.config(ModelKind::Sage);
            let perf = backend.execute(&dataset, &config, &opts).expect("run").perf;
            (t.label().to_string(), config, perf)
        })
        .collect()
}

#[test]
fn csv_export_roundtrips_header_and_rows() {
    let rows = measured_rows();
    let mut buf = Vec::new();
    write_perf_csv(&mut buf, &rows).expect("write");
    let text = String::from_utf8(buf).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + rows.len());
    assert_eq!(lines[0], PERF_CSV_HEADER);
    assert!(lines[1].starts_with("PyG,"));
    // Measured values survive the formatting with full precision.
    let epoch_time: f64 =
        lines[1].split(',').nth(1).expect("time column").parse().expect("numeric");
    assert!((epoch_time - rows[0].2.epoch_time.as_secs()).abs() < 1e-9);
}

#[test]
fn jsonl_export_is_parseable_shape() {
    let rows = measured_rows();
    let mut buf = Vec::new();
    write_perf_jsonl(&mut buf, &rows).expect("write");
    let text = String::from_utf8(buf).expect("utf8");
    assert_eq!(text.lines().count(), rows.len());
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'));
        // Balanced quotes (no broken escaping).
        assert_eq!(line.matches('"').count() % 2, 0, "{line}");
    }
}
