//! Durability chaos suite: kill the runtime at *every* epoch boundary,
//! resume, and demand byte-identity with the uninterrupted run — for
//! the static path, the adaptive path, and under active fault plans —
//! plus checkpoint-corruption fallback and ProfileStore corruption
//! tolerance end-to-end.
//!
//! "Byte-identical" is asserted on the `Debug` rendering of the
//! reports, the same standard the runtime checkpoint unit tests use:
//! every sim-clocked field must match bit for bit. The only excluded
//! field is `SwitchPlan::reexplore_wall_ms`, which is wall-clock and
//! advisory by contract.

use gnnavigator::adapt::{AdaptError, AdaptOptions, AdaptiveReport, AdaptiveRunner};
use gnnavigator::estimator::{Context, GrayBoxEstimator, ProfileDb, ProfileStore, Profiler};
use gnnavigator::explorer::{DfsStats, ExplorationResult};
use gnnavigator::faults::{FaultKind, FaultPlan, FaultSpec};
use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::runtime::{
    DesignSpace, DurabilityOptions, ExecutionOptions, RuntimeBackend, RuntimeError, TrainingConfig,
};
use gnnavigator::store::corrupt;
use gnnavigator::{Guideline, Navigator, NavigatorOptions, Priority, RuntimeConstraints};
use proptest::prelude::*;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gnnav-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

fn dataset() -> Dataset {
    Dataset::load_scaled(DatasetId::Reddit2, 0.01).expect("load")
}

fn platform() -> Platform {
    Platform::default_rtx4090()
}

fn config() -> TrainingConfig {
    TrainingConfig {
        batch_size: 64,
        fanouts: vec![5, 5],
        hidden_dim: 16,
        ..TrainingConfig::default()
    }
}

/// A plan whose only crash/corruption content is one guaranteed
/// `ProcessKill` at epoch boundary `epoch`, bounded to the first life
/// of the lineage so the resumed run completes. On the non-durable
/// path the kill kinds are inert, so the same plan can drive the
/// uninterrupted baseline.
fn kill_at(seed: u64, epoch: usize, extra: &[FaultSpec]) -> FaultPlan {
    let mut plan = FaultPlan::new(seed).with_fault(
        FaultSpec::new(FaultKind::ProcessKill)
            .with_probability(1.0)
            .with_window(epoch as u64, epoch as u64 + 1)
            .with_duration_attempts(1),
    );
    for spec in extra {
        plan = plan.with_fault(spec.clone());
    }
    plan
}

fn exec_opts(epochs: usize, plan: Option<FaultPlan>) -> ExecutionOptions {
    ExecutionOptions { epochs, train_batches_cap: Some(2), fault_plan: plan, ..Default::default() }
}

/// Kills the static run at boundary `k` (first invocation), resumes it
/// (second invocation), and returns the resumed final report.
fn kill_and_resume(
    backend: &RuntimeBackend,
    ds: &Dataset,
    cfg: &TrainingConfig,
    opts: &ExecutionOptions,
    k: usize,
    dir: &std::path::Path,
) -> gnnavigator::runtime::ExecutionReport {
    let dur = DurabilityOptions::new(dir, 1);
    let err = backend.execute_durable(ds, cfg, opts, &dur).expect_err("first life is killed");
    assert!(matches!(err, RuntimeError::Killed { epoch } if epoch == k), "at {k}: {err:?}");
    backend.execute_durable(ds, cfg, opts, &dur).expect("second life completes")
}

#[test]
fn static_kill_at_every_boundary_resumes_byte_identical() {
    let ds = dataset();
    let cfg = config();
    let epochs = 4;
    let backend = RuntimeBackend::new(platform());
    let straight = backend.execute(&ds, &cfg, &exec_opts(epochs, None)).expect("uninterrupted run");

    for k in 0..epochs {
        let dir = tmp_dir(&format!("static-k{k}"));
        let opts = exec_opts(epochs, Some(kill_at(0xD0A, k, &[])));
        let resumed = kill_and_resume(&backend, &ds, &cfg, &opts, k, &dir);
        assert_eq!(
            format!("{resumed:?}"),
            format!("{straight:?}"),
            "kill at boundary {k} must resume to a byte-identical report"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn corrupted_checkpoints_fall_back_and_stay_identical() {
    // Every checkpoint this run writes is immediately torn AND
    // bit-flipped, so resume can never trust the newest (or any)
    // checkpoint: it walks the fallback chain down to a cold start and
    // must still finish byte-identical.
    let ds = dataset();
    let cfg = config();
    let epochs = 3;
    let backend = RuntimeBackend::new(platform());
    let straight = backend.execute(&ds, &cfg, &exec_opts(epochs, None)).expect("uninterrupted run");

    let corruption = [
        FaultSpec::new(FaultKind::TornWrite).with_probability(1.0).with_magnitude(5.0),
        FaultSpec::new(FaultKind::BitFlip).with_probability(1.0).with_magnitude(12.0),
    ];
    for k in 0..epochs {
        let dir = tmp_dir(&format!("corrupt-k{k}"));
        let opts = exec_opts(epochs, Some(kill_at(0xC0, k, &corruption)));
        let resumed = kill_and_resume(&backend, &ds, &cfg, &opts, k, &dir);
        assert_eq!(
            format!("{resumed:?}"),
            format!("{straight:?}"),
            "kill at boundary {k} with all checkpoints corrupted must still resume clean"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Kill + resume under an *active* fault plan: the in-process fault
    /// schedule must continue from the resumed site index, not restart,
    /// so the resumed run's `RecoveryLog` (and whole report) equals the
    /// uninterrupted faulted run's.
    #[test]
    fn kill_resume_under_fault_plan_matches_uninterrupted_run(
        seed in 0u64..1024,
        kill_epoch in 0usize..3,
    ) {
        let ds = dataset();
        let cfg = config();
        let epochs = 3;
        let link = FaultSpec::new(FaultKind::LinkDegrade)
            .with_probability(0.4)
            .with_magnitude(8.0);
        let opts = exec_opts(epochs, Some(kill_at(seed, kill_epoch, &[link])));
        let backend = RuntimeBackend::new(platform());

        // ProcessKill is inert off the durable path: this is the
        // uninterrupted run of the same faulted scenario.
        let straight = backend.execute(&ds, &cfg, &opts).expect("uninterrupted faulted run");

        let dir = tmp_dir(&format!("prop-{seed}-{kill_epoch}"));
        let resumed = kill_and_resume(&backend, &ds, &cfg, &opts, kill_epoch, &dir);
        std::fs::remove_dir_all(&dir).ok();

        prop_assert_eq!(
            format!("{:?}", resumed.recovery),
            format!("{:?}", straight.recovery),
            "fault schedule must continue from the resumed site, not restart"
        );
        prop_assert_eq!(format!("{resumed:?}"), format!("{straight:?}"));
    }
}

// ---------------------------------------------------------------- adapt

/// Profiles a seeded slice of the design space and fits the estimator,
/// mirroring the adaptive suite's sweep.
fn profile_and_fit(ds: &Dataset, start: &TrainingConfig) -> (ProfileDb, GrayBoxEstimator) {
    let profiler = Profiler::new(
        RuntimeBackend::new(platform()),
        ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(1),
            ..Default::default()
        },
    )
    .with_threads(4);
    let mut cfgs = DesignSpace::standard().sample(16, ModelKind::Sage, 5);
    cfgs.push(start.clone());
    let db = profiler.profile(ds, &cfgs).expect("profile");
    let mut est = GrayBoxEstimator::new();
    est.fit(&db).expect("fit");
    (db, est)
}

fn exploration_for(
    ds: &Dataset,
    estimator: &GrayBoxEstimator,
    config: TrainingConfig,
) -> ExplorationResult {
    let estimate = estimator.predict(&Context::new(ds, &platform(), config.clone()));
    ExplorationResult {
        guideline: Guideline { config, estimate, priority: Priority::ExTimeAccuracy },
        evaluated: Vec::new(),
        front: Vec::new(),
        stats: DfsStats::default(),
        audit: Vec::new(),
        fallback: None,
    }
}

/// Renders everything an [`AdaptiveReport`] guarantees deterministic:
/// the full report, the switches with the advisory wall-clock field
/// zeroed, the drift history, and the audit trail.
fn deterministic_rendering(outcome: &AdaptiveReport) -> String {
    let switches: Vec<_> = outcome
        .switches
        .iter()
        .map(|s| {
            let mut s = s.clone();
            s.reexplore_wall_ms = 0.0;
            s
        })
        .collect();
    format!(
        "{:?}\n{switches:?}\n{:?}\n{}\n{:?}",
        outcome.report, outcome.drift_scores, outcome.reexplorations, outcome.audit
    )
}

#[test]
fn adaptive_kill_at_every_boundary_resumes_identically() {
    // A degraded link forces real drift, re-exploration, and a switch,
    // so the checkpointed drift state is load-bearing: losing the EWMA
    // or the observed-epoch window across the kill would change when
    // (or whether) the resumed run switches.
    let ds = Dataset::load_scaled(DatasetId::Reddit2, 0.03).expect("load");
    let start = TrainingConfig {
        fanouts: vec![10, 10],
        batch_size: 256,
        cache_ratio: 0.0,
        cache_policy: gnnavigator::cache::CachePolicy::None,
        hidden_dim: 32,
        ..TrainingConfig::default()
    };
    let (db, estimator) = profile_and_fit(&ds, &start);
    let exploration = exploration_for(&ds, &estimator, start);
    let link = FaultSpec::new(FaultKind::LinkDegrade).with_magnitude(50.0);
    let epochs = 4;
    let runner = AdaptiveRunner::new(platform(), AdaptOptions::default());
    let constraints = RuntimeConstraints::none();

    // Uninterrupted baseline under the same plan (kills inert).
    let baseline_opts = exec_opts(epochs, Some(kill_at(0xAD, 0, std::slice::from_ref(&link))));
    let baseline = runner
        .run(&ds, &exploration, &db, &baseline_opts, &constraints)
        .expect("uninterrupted adaptive run");
    let expected = deterministic_rendering(&baseline);

    for k in 0..epochs {
        let dir = tmp_dir(&format!("adapt-k{k}"));
        let opts = exec_opts(epochs, Some(kill_at(0xAD, k, std::slice::from_ref(&link))));
        let dur = DurabilityOptions::new(&dir, 1);
        let err = runner
            .run_durable(&ds, &exploration, &db, &opts, &constraints, &dur)
            .expect_err("first life is killed");
        assert!(
            matches!(&err, AdaptError::Runtime(RuntimeError::Killed { epoch }) if *epoch == k),
            "at {k}: {err:?}"
        );
        let resumed = runner
            .run_durable(&ds, &exploration, &db, &opts, &constraints, &dur)
            .expect("second life completes");
        assert_eq!(
            deterministic_rendering(&resumed),
            expected,
            "adaptive kill at boundary {k} must resume to an identical outcome"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ------------------------------------------------------- profile store

#[test]
fn corrupted_profile_store_warm_starts_covering_only_lost_configs() {
    let dir = tmp_dir("psdb");
    let db_path = dir.join("profiles.db");

    let nav_options = || NavigatorOptions {
        profile_samples: 12,
        augmentation_graphs: 0,
        augmentation_nodes: 0,
        explore_budget: 200,
        apply_exec: ExecutionOptions {
            epochs: 1,
            train_batches_cap: Some(2),
            ..Default::default()
        },
        ..Default::default()
    };
    let navigator = |store: ProfileStore| {
        Navigator::new(
            Dataset::load_scaled(DatasetId::Reddit2, 0.02).expect("load"),
            platform(),
            ModelKind::Sage,
        )
        .with_options(nav_options())
        .with_profile_store(store)
    };

    // Cold sweep populates the store.
    let mut cold = navigator(ProfileStore::open(&db_path).expect("open"));
    cold.prepare().expect("cold prepare");
    let cold_guideline = cold
        .generate_guideline(Priority::Balance, &RuntimeConstraints::none())
        .expect("cold explore")
        .guideline;
    let full = cold.profile_store().expect("store").len();
    assert!(full >= 3, "need at least 3 records to corrupt 2 ({full})");
    drop(cold);

    // Tear the tail (damages the last record) and flip one bit inside
    // the first record's payload (8-byte segment header, then
    // len+CRC+payload — offset 20 is 4 bytes into record 0's payload).
    corrupt::torn_write(&db_path, 5).expect("torn write");
    corrupt::bit_flip(&db_path, 20, 3).expect("bit flip");

    let store = ProfileStore::open(&db_path).expect("corrupted store still opens");
    let rec = store.recovery();
    assert_eq!(rec.torn_truncated, 1, "exactly the torn record is truncated");
    assert_eq!(rec.crc_failures, 1, "exactly the flipped record fails CRC");
    assert_eq!(store.len(), full - 2, "exactly the damaged records are dropped");

    // Warm navigation over the damaged store: the sweep re-profiles
    // only the two lost configs, restores full coverage, and lands on
    // the cold guideline.
    let mut warm = navigator(store);
    warm.prepare().expect("warm prepare over corrupted store");
    assert_eq!(
        warm.profile_store().expect("store").len(),
        full,
        "warm sweep re-profiles exactly the lost configs"
    );
    let warm_guideline = warm
        .generate_guideline(Priority::Balance, &RuntimeConstraints::none())
        .expect("warm explore")
        .guideline;
    assert_eq!(warm_guideline.config, cold_guideline.config);

    std::fs::remove_dir_all(&dir).ok();
}
