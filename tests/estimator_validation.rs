//! Cross-crate integration: estimator quality floors under the
//! paper's leave-one-dataset-out protocol (Tab. 2's structure).

use gnnavigator::estimator::{GrayBoxEstimator, ProfileDb, Profiler};
use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::runtime::{DesignSpace, ExecutionOptions, RuntimeBackend};

fn build_db() -> ProfileDb {
    let profiler = Profiler::new(
        RuntimeBackend::new(Platform::default_rtx4090()),
        ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(2),
            ..Default::default()
        },
    );
    let mut db = ProfileDb::new();
    for (i, id) in
        [DatasetId::Reddit2, DatasetId::OgbnArxiv, DatasetId::OgbnProducts].iter().enumerate()
    {
        let dataset = Dataset::load_scaled(*id, 0.05).expect("load");
        let configs: Vec<_> = DesignSpace::standard()
            .sample(20, ModelKind::Sage, 31 + i as u64)
            .into_iter()
            .map(|mut c| {
                c.batch_size = c.batch_size.min(128);
                c.hidden_dim = 16;
                c
            })
            .collect();
        db.merge(profiler.profile(&dataset, &configs).expect("profile"));
    }
    db
}

#[test]
fn leave_one_out_metrics_above_floor() {
    let db = build_db();
    for held_out in [DatasetId::Reddit2, DatasetId::OgbnProducts] {
        let (_, report) = GrayBoxEstimator::leave_one_dataset_out(&db, held_out).expect("loo fit");
        assert!(report.r2_memory > 0.5, "{held_out:?}: memory r2 {} below floor", report.r2_memory);
        assert!(report.r2_time > 0.0, "{held_out:?}: time r2 {} below floor", report.r2_time);
        assert!(
            report.mse_accuracy < 0.15,
            "{held_out:?}: accuracy mse {} above ceiling",
            report.mse_accuracy
        );
    }
}

#[test]
fn estimator_orders_cache_vs_no_cache_correctly() {
    // Qualitative fidelity: the estimator must know that adding a
    // static cache reduces predicted epoch time and raises memory.
    use gnnavigator::cache::CachePolicy;
    use gnnavigator::estimator::Context;
    use gnnavigator::TrainingConfig;

    let db = build_db();
    let mut est = GrayBoxEstimator::new();
    est.fit(&db).expect("fit");
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.05).expect("load");
    let platform = Platform::default_rtx4090();

    let no_cache = TrainingConfig {
        cache_ratio: 0.0,
        cache_policy: CachePolicy::None,
        batch_size: 128,
        ..Default::default()
    };
    let cached = TrainingConfig {
        cache_ratio: 0.5,
        cache_policy: CachePolicy::StaticDegree,
        batch_size: 128,
        ..Default::default()
    };
    let p0 = est.predict(&Context::new(&dataset, &platform, no_cache));
    let p1 = est.predict(&Context::new(&dataset, &platform, cached));
    assert!(p1.hit_rate > p0.hit_rate, "cache raises predicted hit rate");
    assert!(p1.time_s < p0.time_s, "cache reduces predicted epoch time");
    assert!(p1.mem_bytes > p0.mem_bytes, "cache costs predicted memory");
}
