//! Adaptive-execution suite: drift-triggered mid-training guideline
//! switches (the `--adapt` path) against static runs of the same
//! guideline, plus the chaos matrix for the adaptive loop.
//!
//! The load-bearing claims, both deterministic:
//! - under a committed link-degradation fault plan the adaptive run
//!   performs at least one audited switch and finishes with strictly
//!   lower total simulated time than the static run with the same
//!   seed;
//! - without faults the adaptive run performs zero switches and its
//!   report is byte-identical to the static run.

use gnnavigator::adapt::{AdaptError, AdaptOptions, AdaptiveRunner};
use gnnavigator::cache::CachePolicy;
use gnnavigator::estimator::{Context, GrayBoxEstimator, ProfileDb, Profiler};
use gnnavigator::explorer::{AuditAction, DfsStats, ExplorationResult};
use gnnavigator::faults::{FaultKind, FaultPlan, FaultSpec};
use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::runtime::{DesignSpace, ExecutionOptions, RuntimeBackend, SamplerKind};
use gnnavigator::{Guideline, Priority, RuntimeConstraints, TrainingConfig};

fn dataset() -> Dataset {
    Dataset::load_scaled(DatasetId::Reddit2, 0.03).expect("load")
}

fn platform() -> Platform {
    Platform::default_rtx4090()
}

/// A cache-less starting guideline: under a degraded link every miss
/// pays full price, so re-exploration has real headroom to exploit.
fn low_cache_config() -> TrainingConfig {
    TrainingConfig {
        sampler: SamplerKind::NodeWise,
        fanouts: vec![10, 10],
        batch_size: 256,
        cache_ratio: 0.0,
        cache_policy: CachePolicy::None,
        hidden_dim: 32,
        ..Default::default()
    }
}

/// Profiles a seeded slice of the design space and fits the estimator
/// — the sweep the adaptive refit warm-starts from.
fn profile_and_fit(dataset: &Dataset) -> (ProfileDb, GrayBoxEstimator) {
    let profiler = Profiler::new(
        RuntimeBackend::new(platform()),
        ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(1),
            ..Default::default()
        },
    )
    .with_threads(4);
    let mut cfgs = DesignSpace::standard().sample(24, ModelKind::Sage, 5);
    // Include the starting guideline so its prediction is in-sample.
    cfgs.push(low_cache_config());
    let db = profiler.profile(dataset, &cfgs).expect("profile");
    let mut est = GrayBoxEstimator::new();
    est.fit(&db).expect("fit");
    (db, est)
}

/// Wraps a fixed starting config as an exploration result (the
/// runner's drift baseline is the guideline's own estimate).
fn exploration_for(
    dataset: &Dataset,
    estimator: &GrayBoxEstimator,
    config: TrainingConfig,
) -> ExplorationResult {
    let estimate = estimator.predict(&Context::new(dataset, &platform(), config.clone()));
    ExplorationResult {
        guideline: Guideline { config, estimate, priority: Priority::ExTimeAccuracy },
        evaluated: Vec::new(),
        front: Vec::new(),
        stats: DfsStats::default(),
        audit: Vec::new(),
        fallback: None,
    }
}

fn exec_opts(plan: Option<FaultPlan>) -> ExecutionOptions {
    ExecutionOptions {
        epochs: 6,
        train_batches_cap: Some(2),
        fault_plan: plan,
        ..Default::default()
    }
}

/// The committed link-degradation plan of the E2E claim: a persistent
/// 50x slowdown on miss transfers, well below the stall threshold.
fn link_degradation_plan() -> FaultPlan {
    FaultPlan::new(0xAD4).with_fault(FaultSpec::new(FaultKind::LinkDegrade).with_magnitude(50.0))
}

#[test]
fn adaptive_beats_static_under_link_degradation() {
    let dataset = dataset();
    let (db, estimator) = profile_and_fit(&dataset);
    let exploration = exploration_for(&dataset, &estimator, low_cache_config());
    let opts = exec_opts(Some(link_degradation_plan()));

    let static_report = RuntimeBackend::new(platform())
        .execute(&dataset, &low_cache_config(), &opts)
        .expect("static run survives the degraded link");

    let runner = AdaptiveRunner::new(platform(), AdaptOptions::default());
    let outcome = runner
        .run(&dataset, &exploration, &db, &opts, &RuntimeConstraints::none())
        .expect("adaptive run survives the degraded link");

    assert!(
        !outcome.switches.is_empty(),
        "a 50x link degradation must drift past the threshold and force a switch \
         (max drift EWMA {:?})",
        outcome.drift_scores.iter().cloned().fold(f64::NAN, f64::max),
    );
    // Every switch is audited with the dedicated action.
    assert_eq!(outcome.audit.len(), outcome.switches.len());
    assert!(outcome.audit.iter().all(|r| r.action == AuditAction::Switched));
    for (s, r) in outcome.switches.iter().zip(&outcome.audit) {
        assert_eq!(r.config, s.to.summary());
        assert!(s.migration_sim_s >= 0.0);
        assert_ne!(s.from, s.to);
    }
    // The switched-to config exploits caching against the slow link.
    let last = outcome.switches.last().expect("non-empty");
    assert!(
        last.to.cache_ratio > 0.0,
        "re-exploration under transfer-dominated observations must pick a cached config, \
         got {}",
        last.to.summary()
    );
    // The whole point: adapting mid-run beats riding out the original
    // guideline, migration costs included.
    let adaptive_s = outcome.report.perf.epoch_time.as_secs();
    let static_s = static_report.perf.epoch_time.as_secs();
    assert!(
        adaptive_s < static_s,
        "adaptive {adaptive_s:.4}s/epoch must beat static {static_s:.4}s/epoch"
    );
    // The final report carries the config that finished the run.
    assert_eq!(outcome.report.config, last.to);
}

#[test]
fn clean_adaptive_run_is_byte_identical_to_static() {
    let dataset = dataset();
    let (db, estimator) = profile_and_fit(&dataset);
    let exploration = exploration_for(&dataset, &estimator, low_cache_config());
    let opts = exec_opts(None);

    let static_report = RuntimeBackend::new(platform())
        .execute(&dataset, &low_cache_config(), &opts)
        .expect("static");
    let outcome = AdaptiveRunner::new(platform(), AdaptOptions::default())
        .run(&dataset, &exploration, &db, &opts, &RuntimeConstraints::none())
        .expect("adaptive");

    assert_eq!(
        outcome.switches.len(),
        0,
        "no faults means no drift past the threshold (max EWMA {:?})",
        outcome.drift_scores.iter().cloned().fold(f64::NAN, f64::max),
    );
    assert!(outcome.audit.is_empty());
    assert_eq!(
        outcome.report, static_report,
        "a zero-switch adaptive run must be byte-identical to the static run"
    );
}

#[test]
fn adaptive_switches_are_deterministic() {
    let dataset = dataset();
    let (db, estimator) = profile_and_fit(&dataset);
    let opts = exec_opts(Some(link_degradation_plan()));
    let run = || {
        AdaptiveRunner::new(platform(), AdaptOptions::default())
            .run(
                &dataset,
                &exploration_for(&dataset, &estimator, low_cache_config()),
                &db,
                &opts,
                &RuntimeConstraints::none(),
            )
            .expect("adaptive")
    };
    let (a, b) = (run(), run());
    // Everything sim-clocked is bit-identical; reexplore_wall_ms is
    // wall-clock and advisory, so it is excluded from the comparison.
    assert_eq!(a.switches.len(), b.switches.len());
    for (x, y) in a.switches.iter().zip(&b.switches) {
        assert_eq!(x.epoch, y.epoch);
        assert_eq!(x.from, y.from);
        assert_eq!(x.to, y.to);
        assert_eq!(x.migration_sim_s, y.migration_sim_s);
        assert_eq!(x.predicted, y.predicted);
        assert_eq!(x.drift_ewma, y.drift_ewma);
    }
    assert_eq!(a.drift_scores, b.drift_scores);
    assert_eq!(a.report, b.report);
}

/// The adaptive chaos matrix: `--adapt` composed with every fault
/// class must terminate — either a successful run (with or without
/// switches) or a typed runtime error, never a panic or a hang.
#[test]
fn adaptive_terminates_under_every_fault_class() {
    let dataset = dataset();
    let (db, estimator) = profile_and_fit(&dataset);
    for kind in FaultKind::ALL {
        let spec = match kind {
            FaultKind::TransientOom => {
                FaultSpec::new(kind).with_magnitude(1e12).with_duration_attempts(2)
            }
            FaultKind::LinkDegrade => FaultSpec::new(kind).with_magnitude(50.0),
            FaultKind::Straggler => FaultSpec::new(kind).with_magnitude(2.0),
            _ => FaultSpec::new(kind).with_duration_attempts(1),
        };
        let plan = FaultPlan::new(0xC4A05).with_fault(spec);
        let result = AdaptiveRunner::new(platform(), AdaptOptions::default()).run(
            &dataset,
            &exploration_for(&dataset, &estimator, low_cache_config()),
            &db,
            &exec_opts(Some(plan)),
            &RuntimeConstraints::none(),
        );
        match result {
            Ok(outcome) => {
                assert_eq!(outcome.audit.len(), outcome.switches.len(), "{kind:?}");
            }
            Err(AdaptError::Runtime(e)) => {
                assert!(!e.to_string().is_empty(), "{kind:?}");
            }
            Err(other) => panic!("{kind:?}: unexpected error class: {other}"),
        }
    }
}

#[test]
fn remaining_time_budget_constrains_reexploration() {
    let dataset = dataset();
    let (db, estimator) = profile_and_fit(&dataset);
    let exploration = exploration_for(&dataset, &estimator, low_cache_config());
    // A per-epoch budget the degraded run blows through immediately:
    // re-exploration still terminates (nearest-feasible fallback
    // inside the explorer) instead of failing the run.
    let constraints = RuntimeConstraints {
        max_time_s: Some(exploration.guideline.estimate.time_s * 2.0),
        ..RuntimeConstraints::none()
    };
    let result = AdaptiveRunner::new(platform(), AdaptOptions::default()).run(
        &dataset,
        &exploration,
        &db,
        &exec_opts(Some(link_degradation_plan())),
        &constraints,
    );
    assert!(result.is_ok(), "budget pressure must degrade, not fail: {result:?}");
}
