//! Cross-crate integration: the baseline templates show the trade-off
//! structure the paper's Fig. 1 and Tab. 1 report.

use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::runtime::{ExecutionOptions, Perf, RuntimeBackend};
use gnnavigator::Template;

/// Executes a template at a scale where cache locality is meaningful.
fn run(template: Template, epochs: usize) -> Perf {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.1).expect("load");
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let opts = ExecutionOptions { epochs, train: false, ..ExecutionOptions::timing_only() };
    backend.execute(&dataset, &template.config(ModelKind::Sage), &opts).expect("run").perf
}

#[test]
fn pagraph_full_is_faster_than_pyg_but_uses_more_memory() {
    let pyg = run(Template::Pyg, 1);
    let pa = run(Template::PaGraphFull, 1);
    assert!(
        pa.epoch_time < pyg.epoch_time,
        "Pa-Full {} should beat PyG {}",
        pa.epoch_time,
        pyg.epoch_time
    );
    assert!(
        pa.peak_mem_bytes > pyg.peak_mem_bytes,
        "PaGraph's speedup costs memory (paper Fig. 1a)"
    );
    assert!(pa.hit_rate > 0.3, "static cache must actually hit: {}", pa.hit_rate);
}

#[test]
fn pagraph_low_sits_between_pyg_and_pagraph_full() {
    let pyg = run(Template::Pyg, 1);
    let low = run(Template::PaGraphLow, 1);
    let full = run(Template::PaGraphFull, 1);
    assert!(low.epoch_time < pyg.epoch_time, "Pa-Low still beats PyG");
    assert!(full.epoch_time < low.epoch_time, "more cache, more speedup");
    assert!(low.hit_rate < full.hit_rate);
}

#[test]
fn two_pgraph_shrinks_batches_via_biased_sampling() {
    let pyg = run(Template::Pyg, 1);
    let two_p = run(Template::TwoPGraph, 1);
    assert!(
        two_p.avg_batch_nodes < pyg.avg_batch_nodes,
        "cache-aware sampling prunes cold neighbors: {} vs {}",
        two_p.avg_batch_nodes,
        pyg.avg_batch_nodes
    );
    assert!(two_p.epoch_time < pyg.epoch_time);
}

#[test]
fn two_pgraph_accuracy_cost_shows_up_with_training() {
    // With actual training, locality-biased target scheduling must
    // not *improve* accuracy; over a few epochs it costs some.
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.08).expect("load");
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let opts = ExecutionOptions { epochs: 2, ..Default::default() };
    let pyg =
        backend.execute(&dataset, &Template::Pyg.config(ModelKind::Sage), &opts).expect("run").perf;
    let two_p = backend
        .execute(&dataset, &Template::TwoPGraph.config(ModelKind::Sage), &opts)
        .expect("run")
        .perf;
    assert!(
        two_p.accuracy <= pyg.accuracy + 0.03,
        "2P accuracy {} should not exceed PyG {} by more than noise",
        two_p.accuracy,
        pyg.accuracy
    );
}

#[test]
fn phase_decomposition_sums_to_serial_time() {
    // For an unpipelined run, epoch time equals the four-phase total.
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.05).expect("load");
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let opts = ExecutionOptions::timing_only();
    let perf =
        backend.execute(&dataset, &Template::Pyg.config(ModelKind::Sage), &opts).expect("run").perf;
    let total = perf.phases.total().as_secs();
    assert!(
        (total - perf.epoch_time.as_secs()).abs() < 1e-9 * total.max(1.0),
        "serial epoch time {} != phase sum {}",
        perf.epoch_time.as_secs(),
        total
    );
}
