//! Platform sensitivity: the same configuration across three devices.
//!
//! ```sh
//! cargo run --release --example platform_comparison
//! ```
//!
//! The paper evaluates on RTX 4090, A100, and M90 platforms; the best
//! training configuration shifts with the hardware balance (compute
//! vs. link vs. host). This example runs one fixed configuration on
//! all three simulated platforms, then lets the explorer re-tune for
//! each — showing that guidelines are platform-adaptive.

use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::runtime::{ExecutionOptions, RuntimeBackend};
use gnnavigator::{Navigator, Priority, RuntimeConstraints, TrainingConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.15)?;
    let platforms =
        [Platform::default_rtx4090(), Platform::default_a100(), Platform::default_m90()];

    println!("## Fixed configuration across platforms\n");
    let fixed = TrainingConfig { batch_size: 128, ..TrainingConfig::default() };
    println!("config: {}\n", fixed.summary());
    let opts = ExecutionOptions { epochs: 2, ..Default::default() };
    for platform in &platforms {
        let backend = RuntimeBackend::new(platform.clone());
        let perf = backend.execute(&dataset, &fixed, &opts)?.perf;
        println!(
            "{:<10} epoch {:>10}  mem {:>7.1} MB  [sample {} | transfer {} | compute {}]",
            platform.device.name,
            perf.epoch_time.to_string(),
            perf.peak_mem_mb(),
            perf.phases.sample,
            perf.phases.transfer,
            perf.phases.compute,
        );
    }

    println!("\n## Per-platform guidelines (Ex-TM priority)\n");
    for platform in platforms {
        let name = platform.device.name.clone();
        let mut nav = Navigator::new(dataset.clone(), platform, ModelKind::Sage);
        nav.prepare()?;
        let result = nav.generate_guideline(Priority::ExTimeMemory, &RuntimeConstraints::none())?;
        let report = nav.apply(&result.guideline)?;
        println!(
            "{:<10} epoch {:>10}  mem {:>7.1} MB  <- {}",
            name,
            report.perf.epoch_time.to_string(),
            report.perf.peak_mem_mb(),
            result.guideline.config.summary()
        );
    }
    Ok(())
}
