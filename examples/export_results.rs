//! Machine-readable result export (CSV + JSON lines).
//!
//! ```sh
//! cargo run --release --example export_results
//! ```
//!
//! Runs the four baseline templates and writes their measured
//! performance to `target/experiment-outputs/templates.csv` and
//! `.jsonl` — the format downstream plotting or regression-tracking
//! tooling consumes.

use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::runtime::{write_perf_csv, write_perf_jsonl, ExecutionOptions, RuntimeBackend};
use gnnavigator::Template;
use std::fs::{self, File};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.1)?;
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let opts = ExecutionOptions { epochs: 2, ..Default::default() };

    let mut rows = Vec::new();
    for template in Template::ALL {
        let config = template.config(ModelKind::Sage);
        let report = backend.execute(&dataset, &config, &opts)?;
        rows.push((template.label().to_string(), config, report.perf));
    }

    let dir = std::path::Path::new("target/experiment-outputs");
    fs::create_dir_all(dir)?;
    let csv_path = dir.join("templates.csv");
    let jsonl_path = dir.join("templates.jsonl");
    write_perf_csv(File::create(&csv_path)?, &rows)?;
    write_perf_jsonl(File::create(&jsonl_path)?, &rows)?;
    println!("wrote {} and {}", csv_path.display(), jsonl_path.display());
    for line in fs::read_to_string(&csv_path)?.lines().take(3) {
        println!("  {line}");
    }
    Ok(())
}
