//! Quickstart: generate and apply one training guideline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Loads the Reddit2 stand-in, profiles the design space, fits the
//! gray-box estimator, asks for a balanced guideline, and runs it —
//! comparing the measured performance against the PyG baseline.

use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::{Navigator, Priority, RuntimeConstraints, Template};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Inputs: dataset, model, platform (paper Fig. 2, Step 1).
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.2)?;
    println!(
        "dataset: {} ({} nodes, {} features, {} classes)",
        dataset.id().full_name(),
        dataset.num_nodes(),
        dataset.feat_dim(),
        dataset.num_classes()
    );
    let mut nav = Navigator::new(dataset, Platform::default_rtx4090(), ModelKind::Sage);

    // 2. Profile the backend and fit the gray-box estimator (Step 2).
    println!("profiling the design space and fitting the estimator...");
    nav.prepare()?;
    println!("profiled {} configurations", nav.profile_db().len());

    // 3. Generate a balanced guideline.
    let result = nav.generate_guideline(Priority::Balance, &RuntimeConstraints::none())?;
    println!("\nguideline ({}): {}", result.guideline.priority, result.guideline.config.summary());
    println!(
        "predicted: {:.1} ms/epoch, {:.1} MB, {:.1}% accuracy",
        result.guideline.estimate.time_s * 1e3,
        result.guideline.estimate.mem_bytes / 1e6,
        result.guideline.estimate.accuracy * 100.0
    );

    // 4. Apply it on the backend (Step 3) and compare against PyG.
    let guided = nav.apply(&result.guideline)?;
    let pyg = nav.run_template(Template::Pyg)?;
    println!(
        "\nmeasured (guideline): {} /epoch, {:.1} MB, {:.1}% accuracy",
        guided.perf.epoch_time,
        guided.perf.peak_mem_mb(),
        guided.perf.accuracy * 100.0
    );
    println!(
        "measured (PyG):       {} /epoch, {:.1} MB, {:.1}% accuracy",
        pyg.perf.epoch_time,
        pyg.perf.peak_mem_mb(),
        pyg.perf.accuracy * 100.0
    );
    println!(
        "\nspeedup vs PyG: {:.2}x, memory delta: {:+.1}%",
        guided.perf.speedup_vs(&pyg.perf),
        guided.perf.mem_delta_vs(&pyg.perf) * 100.0
    );
    Ok(())
}
