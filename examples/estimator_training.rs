//! Estimator deep-dive: profile, fit, validate, inspect.
//!
//! ```sh
//! cargo run --release --example estimator_training
//! ```
//!
//! Builds a profile database over two datasets plus power-law
//! augmentation graphs, fits the gray-box estimator with the paper's
//! leave-one-dataset-out protocol, and prints the Tab. 2 metrics plus
//! a few sanity predictions.

use gnnavigator::estimator::{Context, GrayBoxEstimator, ProfileDb, Profiler};
use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::runtime::{DesignSpace, ExecutionOptions, RuntimeBackend};
use gnnavigator::TrainingConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::default_rtx4090();
    let profiler = Profiler::new(
        RuntimeBackend::new(platform.clone()),
        ExecutionOptions {
            epochs: 1,
            train: true,
            train_batches_cap: Some(4),
            ..Default::default()
        },
    );

    // Ground truth across two datasets + augmentation.
    let mut db = ProfileDb::new();
    for (i, id) in [DatasetId::Reddit2, DatasetId::OgbnArxiv].iter().enumerate() {
        let dataset = Dataset::load_scaled(*id, 0.1)?;
        let configs = DesignSpace::standard().sample(40, ModelKind::Sage, 21 + i as u64);
        db.merge(profiler.profile(&dataset, &configs)?);
        println!("profiled {} -> {} records total", id, db.len());
    }
    let aug_configs = DesignSpace::standard().sample(15, ModelKind::Sage, 99);
    db.merge(profiler.profile_augmentation(2, 2000, &aug_configs, 7)?);
    println!("augmented -> {} records total", db.len());

    // Leave-one-dataset-out validation (paper Tab. 2).
    let (estimator, report) = GrayBoxEstimator::leave_one_dataset_out(&db, DatasetId::Reddit2)?;
    println!("\nheld-out Reddit2 validation over {} records:", report.num_records);
    println!("  R2(time)   = {:.4}", report.r2_time);
    println!("  R2(memory) = {:.4}", report.r2_memory);
    println!("  MSE(acc)   = {:.4}", report.mse_accuracy);

    // Inspect a few predictions for a config the profiling never ran.
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, 0.1)?;
    for (label, config) in [
        ("default", TrainingConfig::default()),
        (
            "fp16 + big cache",
            TrainingConfig {
                precision: gnnavigator::hwsim::Precision::Fp16,
                cache_ratio: 0.5,
                cache_policy: gnnavigator::cache::CachePolicy::StaticDegree,
                ..TrainingConfig::default()
            },
        ),
    ] {
        let ctx = Context::new(&dataset, &platform, config);
        let est = estimator.predict(&ctx);
        println!(
            "\nprediction [{label}]: {:.2} ms/epoch, {:.1} MB, {:.1}% acc \
             (|Vi| ~ {:.0}, hit ~ {:.2})",
            est.time_s * 1e3,
            est.mem_bytes / 1e6,
            est.accuracy * 100.0,
            est.batch_nodes,
            est.hit_rate
        );
    }
    Ok(())
}
