//! Baseline reproduction: PyG, PaGraph, and 2PGraph as backend
//! templates.
//!
//! ```sh
//! cargo run --release --example reproduce_baselines
//! ```
//!
//! The paper's §3.2 claim is that existing training systems fall out
//! of the reconfigurable backend as configuration templates. This
//! example runs all four templates on two datasets and prints the
//! trade-offs each system makes (the phenomenon of the paper's
//! Fig. 1).

use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::runtime::{ExecutionOptions, RuntimeBackend};
use gnnavigator::Template;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let opts = ExecutionOptions { epochs: 2, ..Default::default() };

    for id in [DatasetId::Reddit2, DatasetId::OgbnProducts] {
        let dataset = Dataset::load_scaled(id, 0.2)?;
        println!("## {} + SAGE ({} nodes)\n", id.full_name(), dataset.num_nodes());
        println!(
            "{:<8} {:>12} {:>10} {:>9} {:>6}  phase split (sample/transfer/replace/compute)",
            "system", "time/epoch", "memory", "accuracy", "hit"
        );
        let mut pyg_perf = None;
        for template in Template::ALL {
            let config = template.config(ModelKind::Sage);
            let report = backend.execute(&dataset, &config, &opts)?;
            let p = report.perf;
            if template == Template::Pyg {
                pyg_perf = Some(p);
            }
            println!(
                "{:<8} {:>12} {:>8.1}MB {:>8.1}% {:>6.2}  {} / {} / {} / {}",
                template.label(),
                p.epoch_time.to_string(),
                p.peak_mem_mb(),
                p.accuracy * 100.0,
                p.hit_rate,
                p.phases.sample,
                p.phases.transfer,
                p.phases.replace,
                p.phases.compute,
            );
        }
        if let Some(pyg) = pyg_perf {
            println!("\ntrade-offs vs PyG:");
            for template in &Template::ALL[1..] {
                let report = backend.execute(&dataset, &template.config(ModelKind::Sage), &opts)?;
                println!(
                    "  {:<8} {:.2}x speedup at {:+.1}% memory, {:+.2}% accuracy",
                    template.label(),
                    report.perf.speedup_vs(&pyg),
                    report.perf.mem_delta_vs(&pyg) * 100.0,
                    (report.perf.accuracy - pyg.accuracy) * 100.0
                );
            }
        }
        println!();
    }
    Ok(())
}
