//! Developer calibration harness: prints template performance and the
//! locality-bias accuracy trade on Reddit2+SAGE so cost-model
//! constants can be tuned. Not part of the evaluation tables.
use gnnav_graph::{Dataset, DatasetId};
use gnnav_hwsim::Platform;
use gnnav_nn::ModelKind;
use gnnav_runtime::{ExecutionOptions, RuntimeBackend, Template};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::var("GNNAV_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let batch: usize =
        std::env::var("GNNAV_BATCH").ok().and_then(|s| s.parse().ok()).unwrap_or(128);
    let dataset = Dataset::load_scaled(DatasetId::Reddit2, scale)?;
    let backend = RuntimeBackend::new(Platform::default_rtx4090());
    let mut results = Vec::new();
    for t in Template::ALL {
        let mut cfg = t.config(ModelKind::Sage);
        cfg.batch_size = batch;
        // Average accuracy over 3 seeds to suppress training noise.
        let mut acc = 0.0;
        let mut perf = None;
        for seed in 0..3u64 {
            let opts = ExecutionOptions { epochs: 3, seed: 0x6AA7 + seed, ..Default::default() };
            let r = backend.execute(&dataset, &cfg, &opts)?;
            acc += r.perf.accuracy / 3.0;
            perf = Some(r.perf);
        }
        let p = perf.expect("ran");
        println!(
            "{:8} T={:10} mem={:7.2}MB acc={:5.2}% hit={:4.2} |Vi|={:6.0}",
            t.label(),
            p.epoch_time.to_string(),
            p.peak_mem_mb(),
            acc * 100.0,
            p.hit_rate,
            p.avg_batch_nodes,
        );
        results.push((t, p, acc));
    }
    let (_, pyg, pyg_acc) = results[0];
    for (t, p, acc) in &results[1..] {
        println!(
            "{:8} speedup {:.2}x  mem {:+.1}%  dacc {:+.2}%",
            t.label(),
            p.speedup_vs(&pyg),
            p.mem_delta_vs(&pyg) * 100.0,
            (acc - pyg_acc) * 100.0
        );
    }
    Ok(())
}
