//! Adaptability demo: one workload, four application scenarios.
//!
//! ```sh
//! cargo run --release --example adaptive_guidelines
//! ```
//!
//! The same dataset + model is tuned for four different priorities
//! (the paper's Bal / Ex-TM / Ex-MA / Ex-TA rows), plus a
//! memory-constrained edge scenario on the weaker M90 platform where
//! a hard memory budget prunes the design space.

use gnnavigator::graph::{Dataset, DatasetId};
use gnnavigator::hwsim::Platform;
use gnnavigator::nn::ModelKind;
use gnnavigator::{Navigator, Priority, RuntimeConstraints};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::load_scaled(DatasetId::OgbnProducts, 0.2)?;

    // --- Scenario group 1: priorities on a datacenter GPU. ---
    let mut nav = Navigator::new(dataset.clone(), Platform::default_rtx4090(), ModelKind::Sage);
    nav.prepare()?;
    println!("## Priorities on RTX 4090 (ogbn-products stand-in)\n");
    println!("{:<6} {:>12} {:>10} {:>9}  config", "prio", "time/epoch", "memory", "accuracy");
    for priority in Priority::ALL {
        let result = nav.generate_guideline(priority, &RuntimeConstraints::none())?;
        let report = nav.apply(&result.guideline)?;
        println!(
            "{:<6} {:>12} {:>8.1}MB {:>8.1}%  {}",
            priority.label(),
            report.perf.epoch_time.to_string(),
            report.perf.peak_mem_mb(),
            report.perf.accuracy * 100.0,
            result.guideline.config.summary()
        );
    }

    // --- Scenario group 2: hard memory budget on an M90 edge box. ---
    println!("\n## Memory-constrained scenario on M90\n");
    let mut edge_nav = Navigator::new(dataset, Platform::default_m90(), ModelKind::Sage);
    edge_nav.prepare()?;
    let unconstrained =
        edge_nav.generate_guideline(Priority::ExTimeAccuracy, &RuntimeConstraints::none())?;
    let baseline = edge_nav.apply(&unconstrained.guideline)?;
    println!(
        "unconstrained Ex-TA: {} /epoch, {:.1} MB",
        baseline.perf.epoch_time,
        baseline.perf.peak_mem_mb()
    );

    // Budget at 80% of what the unconstrained guideline used.
    let budget_bytes = (baseline.perf.peak_mem_bytes as f64 * 0.8) as usize;
    let constraints = RuntimeConstraints {
        max_mem_bytes: Some(budget_bytes as f64),
        ..RuntimeConstraints::none()
    };
    let constrained = edge_nav.generate_guideline(Priority::ExTimeAccuracy, &constraints)?;
    let report = edge_nav.apply(&constrained.guideline)?;
    println!(
        "with {:.1} MB budget:  {} /epoch, {:.1} MB  ({} subtrees pruned)",
        budget_bytes as f64 / 1e6,
        report.perf.epoch_time,
        report.perf.peak_mem_mb(),
        constrained.stats.pruned_subtrees
    );
    println!("constrained config: {}", constrained.guideline.config.summary());
    Ok(())
}
